#include "net/routing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qntn::net {
namespace {

/// Two triangle paths: direct low-eta edge vs two-hop high-eta path.
Graph triangle() {
  Graph g;
  g.add_node("s");
  g.add_node("m");
  g.add_node("d");
  g.add_edge(0, 2, 0.4);  // direct but lossy
  g.add_edge(0, 1, 0.9);
  g.add_edge(1, 2, 0.9);
  return g;
}

Graph random_graph(std::size_t n, double edge_prob, Rng& rng) {
  Graph g;
  for (std::size_t i = 0; i < n; ++i) g.add_node();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform(0.0, 1.0) < edge_prob) {
        g.add_edge(i, j, rng.uniform(0.05, 1.0));
      }
    }
  }
  return g;
}

TEST(EdgeCost, PaperMetricInverseEta) {
  EXPECT_NEAR(edge_cost(0.5, CostMetric::InverseEta), 2.0, 1e-6);
  // Epsilon prevents division by zero on dead links.
  EXPECT_LT(edge_cost(0.0, CostMetric::InverseEta), 2e9);
  EXPECT_GT(edge_cost(0.0, CostMetric::InverseEta), 1e8);
}

TEST(EdgeCost, AllMetricsNonNegativeAndDecreasingInEta) {
  for (const auto metric :
       {CostMetric::InverseEta, CostMetric::NegLogEta, CostMetric::HopCount}) {
    double prev = 1e300;
    for (double eta = 0.0; eta <= 1.0; eta += 0.05) {
      const double c = edge_cost(eta, metric);
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, prev + 1e-12);
      prev = c;
    }
  }
  EXPECT_THROW((void)edge_cost(-0.1, CostMetric::InverseEta), PreconditionError);
}

TEST(BellmanFord, PrefersTwoGoodHopsUnderInverseEta) {
  // Paper metric: cost(0.4) = 2.5 > cost(0.9)*2 = 2.22 -> two-hop wins.
  const Graph g = triangle();
  const auto route = bellman_ford(g, 0, 2, CostMetric::InverseEta);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->path, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_NEAR(route->transmissivity, 0.81, 1e-12);
}

TEST(BellmanFord, MetricChangesSelectedPath) {
  // Make the direct edge good enough that InverseEta picks it while
  // NegLogEta still prefers the higher-product two-hop path:
  // eta products: direct 0.8 vs 0.9*0.9 = 0.81 (NegLogEta -> two hops);
  // inverse-eta costs: direct 1.25 vs 2.22 (InverseEta -> direct).
  Graph g;
  g.add_node();
  g.add_node();
  g.add_node();
  g.add_edge(0, 2, 0.8);
  g.add_edge(0, 1, 0.9);
  g.add_edge(1, 2, 0.9);
  const auto inverse = bellman_ford(g, 0, 2, CostMetric::InverseEta);
  const auto neglog = bellman_ford(g, 0, 2, CostMetric::NegLogEta);
  ASSERT_TRUE(inverse && neglog);
  EXPECT_EQ(inverse->path.size(), 2u);
  EXPECT_EQ(neglog->path.size(), 3u);
  EXPECT_GT(neglog->transmissivity, inverse->transmissivity);
}

TEST(BellmanFord, UnreachableDestination) {
  Graph g;
  g.add_node();
  g.add_node();
  EXPECT_FALSE(bellman_ford(g, 0, 1).has_value());
}

TEST(BellmanFord, SourceEqualsDestination) {
  Graph g;
  g.add_node();
  const auto route = bellman_ford(g, 0, 0);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->path, std::vector<NodeId>{0});
  EXPECT_DOUBLE_EQ(route->cost, 0.0);
  EXPECT_DOUBLE_EQ(route->transmissivity, 1.0);
}

TEST(BellmanFord, PicksBestOfParallelEdges) {
  Graph g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1, 0.3);
  g.add_edge(0, 1, 0.95);
  const auto route = bellman_ford(g, 0, 1);
  ASSERT_TRUE(route.has_value());
  EXPECT_DOUBLE_EQ(route->transmissivity, 0.95);
}

TEST(Dijkstra, MatchesBellmanFordOnTriangle) {
  const Graph g = triangle();
  const auto bf = bellman_ford(g, 0, 2);
  const auto dj = dijkstra(g, 0, 2);
  ASSERT_TRUE(bf && dj);
  EXPECT_NEAR(bf->cost, dj->cost, 1e-12);
  EXPECT_EQ(bf->path, dj->path);
}

/// Oracle property: BF, Dijkstra, and the paper's distance-vector variant
/// agree on optimal cost over random graphs, for every metric.
class RouterAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterAgreement, AllRoutersAgreeOnCost) {
  Rng rng(GetParam());
  const Graph g = random_graph(14, 0.3, rng);
  for (const auto metric :
       {CostMetric::InverseEta, CostMetric::NegLogEta, CostMetric::HopCount}) {
    const DistanceVectorRouter dv(g, metric);
    for (NodeId src = 0; src < g.node_count(); src += 3) {
      const ShortestPathTree tree = bellman_ford_tree(g, src, metric);
      for (NodeId dst = 0; dst < g.node_count(); ++dst) {
        const auto bf = route_from_tree(g, tree, src, dst);
        const auto dj = dijkstra(g, src, dst, metric);
        const auto dvr = dv.route(src, dst);
        ASSERT_EQ(bf.has_value(), dj.has_value());
        ASSERT_EQ(bf.has_value(), dvr.has_value());
        if (!bf) continue;
        EXPECT_NEAR(bf->cost, dj->cost, 1e-9);
        EXPECT_NEAR(bf->cost, dvr->cost, 1e-9);
        // Path endpoints and contiguity.
        EXPECT_EQ(bf->path.front(), src);
        EXPECT_EQ(bf->path.back(), dst);
        EXPECT_EQ(dvr->path.front(), src);
        EXPECT_EQ(dvr->path.back(), dst);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterAgreement,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(DistanceVectorRouter, TableSemantics) {
  const Graph g = triangle();
  const DistanceVectorRouter router(g);
  const auto& table = router.table(0);
  EXPECT_DOUBLE_EQ(table[0].cost, 0.0);                 // self
  EXPECT_NEAR(table[1].cost, 1.0 / (0.9 + 1e-9), 1e-6);  // adjacent
  ASSERT_TRUE(table[2].via.has_value());
  EXPECT_EQ(*table[2].via, 1u);  // best path to d goes via m
}

TEST(DistanceVectorRouter, UnreachableEntriesStayInfinite) {
  Graph g;
  g.add_node();
  g.add_node();
  const DistanceVectorRouter router(g);
  EXPECT_FALSE(router.table(0)[1].via.has_value());
  EXPECT_FALSE(router.route(0, 1).has_value());
}

TEST(Route, TransmissivityIsEdgeProduct) {
  Rng rng(99);
  const Graph g = random_graph(10, 0.4, rng);
  for (NodeId dst = 1; dst < g.node_count(); ++dst) {
    const auto route = bellman_ford(g, 0, dst, CostMetric::NegLogEta);
    if (!route) continue;
    // NegLogEta: cost = -sum log eta => product = exp(-cost).
    EXPECT_NEAR(route->transmissivity, std::exp(-route->cost), 1e-9);
  }
}

TEST(Routing, LinearChainPathAndCost) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.add_node();
  for (NodeId i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1, 0.9);
  const auto route = bellman_ford(g, 0, 4);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->path.size(), 5u);
  EXPECT_NEAR(route->transmissivity, std::pow(0.9, 4.0), 1e-12);
}

TEST(Routing, PrecomputedEdgeCostsMatchMetricOverload) {
  // The costs-taking overload (one edge pricing pass shared across sources)
  // must produce trees identical to the metric-taking one, for every
  // metric — same costs, same predecessors, to the last bit.
  Rng rng(20260806);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = random_graph(24, 0.2, rng);
    for (const CostMetric metric :
         {CostMetric::InverseEta, CostMetric::NegLogEta, CostMetric::HopCount}) {
      std::vector<double> costs;
      compute_edge_costs(g, metric, costs);
      ASSERT_EQ(costs.size(), g.edge_count());
      for (NodeId src = 0; src < g.node_count(); ++src) {
        const ShortestPathTree by_metric = bellman_ford_tree(g, src, metric);
        const ShortestPathTree by_costs = bellman_ford_tree(g, src, costs);
        EXPECT_EQ(by_metric.cost, by_costs.cost);
        EXPECT_EQ(by_metric.previous, by_costs.previous);
      }
    }
  }
}

TEST(Routing, MetricEtaIndependence) {
  static_assert(metric_is_eta_independent(CostMetric::HopCount));
  static_assert(!metric_is_eta_independent(CostMetric::InverseEta));
  static_assert(!metric_is_eta_independent(CostMetric::NegLogEta));
}

}  // namespace
}  // namespace qntn::net
