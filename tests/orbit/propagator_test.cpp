#include "orbit/propagator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/units.hpp"

namespace qntn::orbit {
namespace {

KeplerianElements leo() {
  KeplerianElements el;
  el.semi_major_axis = 6'871'000.0;
  el.eccentricity = 0.0;
  el.inclination = deg_to_rad(53.0);
  el.raan = deg_to_rad(120.0);
  el.arg_perigee = 0.0;
  el.true_anomaly = deg_to_rad(30.0);
  return el;
}

TEST(Propagator, ReturnsEpochStateAtZero) {
  const TwoBodyPropagator prop(leo());
  const StateVector s0 = prop.state_at(0.0);
  const StateVector s_ref = elements_to_state(leo());
  EXPECT_NEAR(distance(s0.position, s_ref.position), 0.0, 1e-3);
}

TEST(Propagator, PeriodicWithOrbitalPeriod) {
  const TwoBodyPropagator prop(leo());
  const double period = leo().period();
  const StateVector s0 = prop.state_at(0.0);
  const StateVector s1 = prop.state_at(period);
  EXPECT_NEAR(distance(s0.position, s1.position), 0.0, 1e-2);
  const StateVector s10 = prop.state_at(10.0 * period);
  EXPECT_NEAR(distance(s0.position, s10.position), 0.0, 1e-1);
}

TEST(Propagator, HalfPeriodIsAntipodalOnCircularOrbit) {
  const TwoBodyPropagator prop(leo());
  const double period = leo().period();
  const Vec3 p0 = prop.state_at(0.0).position;
  const Vec3 ph = prop.state_at(period / 2.0).position;
  EXPECT_NEAR(distance(p0, -1.0 * ph), 0.0, 1e-2);
}

TEST(Propagator, RadiusConstantOnCircularOrbit) {
  const TwoBodyPropagator prop(leo());
  for (double t = 0.0; t < 86'400.0; t += 1800.0) {
    EXPECT_NEAR(prop.state_at(t).position.norm(), 6'871'000.0, 1e-2);
  }
}

TEST(Propagator, EnergyConservedOnEllipticalOrbit) {
  KeplerianElements el = leo();
  el.eccentricity = 0.2;
  const TwoBodyPropagator prop(el);
  const double energy_ref = -kEarthMu / (2.0 * el.semi_major_axis);
  for (double t = 0.0; t < 20'000.0; t += 931.0) {
    const StateVector s = prop.state_at(t);
    const double energy =
        0.5 * s.velocity.norm_sq() - kEarthMu / s.position.norm();
    EXPECT_NEAR(energy, energy_ref, std::fabs(energy_ref) * 1e-10);
  }
}

TEST(Propagator, NoDriftWithoutJ2) {
  const TwoBodyPropagator prop(leo());
  EXPECT_DOUBLE_EQ(prop.raan_rate(), 0.0);
  EXPECT_DOUBLE_EQ(prop.arg_perigee_rate(), 0.0);
  EXPECT_DOUBLE_EQ(prop.elements_at(40'000.0).raan, leo().raan);
}

TEST(Propagator, J2NodalRegressionForPrograde) {
  PropagatorOptions options;
  options.include_j2 = true;
  const TwoBodyPropagator prop(leo(), options);
  // Prograde orbit (i < 90 deg): RAAN regresses (westward drift).
  EXPECT_LT(prop.raan_rate(), 0.0);
  // For a 500 km, 53 deg orbit the drift is about -5 deg/day.
  const double drift_deg_per_day = rad_to_deg(prop.raan_rate() * 86'400.0);
  EXPECT_NEAR(drift_deg_per_day, -5.0, 0.5);
}

TEST(Propagator, J2RetrogradeOrbitPrecessesEastward) {
  KeplerianElements el = leo();
  el.inclination = deg_to_rad(120.0);
  PropagatorOptions options;
  options.include_j2 = true;
  EXPECT_GT(TwoBodyPropagator(el, options).raan_rate(), 0.0);
}

TEST(Propagator, J2CriticalInclinationFreezesPerigee) {
  KeplerianElements el = leo();
  el.inclination = std::asin(std::sqrt(4.0 / 5.0));  // 63.43 deg
  PropagatorOptions options;
  options.include_j2 = true;
  EXPECT_NEAR(TwoBodyPropagator(el, options).arg_perigee_rate(), 0.0, 1e-12);
}

TEST(Propagator, J2DriftAppliedToElements) {
  PropagatorOptions options;
  options.include_j2 = true;
  const TwoBodyPropagator prop(leo(), options);
  const double t = 86'400.0;
  const KeplerianElements el = prop.elements_at(t);
  EXPECT_NEAR(el.raan, wrap_two_pi(leo().raan + prop.raan_rate() * t), 1e-12);
}

}  // namespace
}  // namespace qntn::orbit
