#include "orbit/passes.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "geo/frames.hpp"
#include "orbit/constellation.hpp"

namespace qntn::orbit {
namespace {

const geo::Geodetic kCookeville = geo::Geodetic::from_degrees(36.18, -85.51, 0.0);

Ephemeris day_ephemeris(std::size_t which = 0) {
  const auto elements = qntn_constellation(6);
  return Ephemeris::generate(TwoBodyPropagator(elements[which]), 86'400.0, 30.0);
}

TEST(Passes, LeoPassesExistAndAreShort) {
  const Ephemeris eph = day_ephemeris();
  const auto passes =
      find_passes(eph, kCookeville, 86'400.0, deg_to_rad(20.0));
  ASSERT_GT(passes.size(), 0u);
  for (const Pass& pass : passes) {
    EXPECT_LT(pass.aos, pass.los);
    EXPECT_GE(pass.culmination, pass.aos);
    EXPECT_LE(pass.culmination, pass.los);
    // A 500 km pass above 20 deg lasts minutes, not hours.
    EXPECT_LT(pass.duration(), 12.0 * 60.0);
    EXPECT_GT(pass.duration(), 10.0);
    EXPECT_GE(pass.max_elevation, deg_to_rad(20.0));
    EXPECT_LE(pass.max_elevation, deg_to_rad(90.0) + 1e-9);
  }
}

TEST(Passes, RefinedCrossingsSitOnTheMask) {
  const Ephemeris eph = day_ephemeris();
  const double mask = deg_to_rad(25.0);
  const auto passes = find_passes(eph, kCookeville, 86'400.0, mask);
  ASSERT_GT(passes.size(), 0u);
  for (const Pass& pass : passes) {
    if (pass.aos > 0.0) {  // interior crossing, not clipped at t = 0
      const double el =
          geo::look_angles(kCookeville, eph.position_ecef(pass.aos)).elevation;
      EXPECT_NEAR(el, mask, 1e-3) << "aos";
    }
    if (pass.los < 86'400.0) {
      const double el =
          geo::look_angles(kCookeville, eph.position_ecef(pass.los)).elevation;
      EXPECT_NEAR(el, mask, 1e-3) << "los";
    }
  }
}

TEST(Passes, HigherMaskMeansFewerShorterPasses) {
  const Ephemeris eph = day_ephemeris();
  const auto low = find_passes(eph, kCookeville, 86'400.0, deg_to_rad(10.0));
  const auto high = find_passes(eph, kCookeville, 86'400.0, deg_to_rad(45.0));
  const PassStatistics low_stats = summarize_passes(low);
  const PassStatistics high_stats = summarize_passes(high);
  EXPECT_GT(low_stats.total_contact, high_stats.total_contact);
  EXPECT_GE(low_stats.count, high_stats.count);
  if (high_stats.count > 0) {
    EXPECT_LT(high_stats.mean_duration, low_stats.mean_duration);
  }
}

TEST(Passes, PassesAreDisjointAndOrdered) {
  const Ephemeris eph = day_ephemeris(3);
  const auto passes = find_passes(eph, kCookeville, 86'400.0, deg_to_rad(20.0));
  for (std::size_t i = 1; i < passes.size(); ++i) {
    EXPECT_GT(passes[i].aos, passes[i - 1].los);
  }
}

TEST(Passes, EmptyWhenMaskUnreachable) {
  const Ephemeris eph = day_ephemeris();
  // An 89.9 deg mask is (essentially) never met.
  const auto passes =
      find_passes(eph, kCookeville, 86'400.0, deg_to_rad(89.9));
  EXPECT_TRUE(passes.empty());
}

TEST(Passes, SummaryOfEmptyListIsZero) {
  const PassStatistics stats = summarize_passes({});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.total_contact, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_duration, 0.0);
}

// Re-base the day ephemeris so simulation time zero lands at `offset`
// seconds into the original trajectory (mimics starting the sim mid-pass).
Ephemeris shifted_ephemeris(const Ephemeris& eph, std::size_t offset_steps) {
  std::vector<Vec3> samples;
  for (std::size_t i = offset_steps; i < eph.sample_count(); ++i) {
    samples.push_back(eph.sample(i));
  }
  return Ephemeris(std::move(samples), eph.step());
}

TEST(Passes, PassInProgressAtTimeZeroClipsToZero) {
  const Ephemeris day = day_ephemeris();
  const double mask = deg_to_rad(20.0);
  const auto day_passes = find_passes(day, kCookeville, 86'400.0, mask);
  ASSERT_GT(day_passes.size(), 0u);
  // Re-base so t = 0 sits at a culmination: the pass is already in
  // progress when the clock starts.
  const Pass& reference = day_passes.front();
  const auto offset =
      static_cast<std::size_t>(reference.culmination / day.step());
  const Ephemeris shifted = shifted_ephemeris(day, offset);
  const auto passes = find_passes(shifted, kCookeville, shifted.duration(), mask);
  ASSERT_GT(passes.size(), 0u);
  EXPECT_DOUBLE_EQ(passes.front().aos, 0.0);
  EXPECT_GE(geo::look_angles(kCookeville, shifted.position_ecef(0.0)).elevation,
            mask);
}

TEST(Passes, PassStraddlingTheEndClipsToDuration) {
  const Ephemeris day = day_ephemeris();
  const double mask = deg_to_rad(20.0);
  const auto day_passes = find_passes(day, kCookeville, 86'400.0, mask);
  ASSERT_GT(day_passes.size(), 0u);
  // Cut the scan window in the middle of a known pass.
  const Pass& reference = day_passes.front();
  const double cut = reference.culmination;
  const auto clipped = find_passes(day, kCookeville, cut, mask);
  ASSERT_GT(clipped.size(), 0u);
  const Pass& last = clipped.back();
  EXPECT_DOUBLE_EQ(last.los, cut);
  EXPECT_NEAR(last.aos, reference.aos, 1e-6);
  EXPECT_LE(last.max_elevation, reference.max_elevation + 1e-12);
}

TEST(Passes, AdaptiveMatchesDenseScan) {
  for (const std::size_t which : {std::size_t{0}, std::size_t{3}}) {
    const Ephemeris eph = day_ephemeris(which);
    for (const double mask_deg : {10.0, 20.0, 45.0}) {
      const double mask = deg_to_rad(mask_deg);
      const auto dense = find_passes(eph, kCookeville, 86'400.0, mask);
      const auto adaptive =
          find_passes_adaptive(eph, kCookeville, 86'400.0, mask);
      ASSERT_EQ(adaptive.size(), dense.size()) << "mask " << mask_deg;
      for (std::size_t i = 0; i < dense.size(); ++i) {
        // Same grid brackets feed the same bisection: boundaries agree to
        // the refinement precision.
        EXPECT_NEAR(adaptive[i].aos, dense[i].aos, 1e-6);
        EXPECT_NEAR(adaptive[i].los, dense[i].los, 1e-6);
      }
    }
  }
}

TEST(Passes, AdaptiveClipsAtTimeZeroToo) {
  const Ephemeris day = day_ephemeris();
  const double mask = deg_to_rad(20.0);
  const auto day_passes = find_passes(day, kCookeville, 86'400.0, mask);
  ASSERT_GT(day_passes.size(), 0u);
  const auto offset =
      static_cast<std::size_t>(day_passes.front().culmination / day.step());
  const Ephemeris shifted = shifted_ephemeris(day, offset);
  const auto passes =
      find_passes_adaptive(shifted, kCookeville, shifted.duration(), mask);
  ASSERT_GT(passes.size(), 0u);
  EXPECT_DOUBLE_EQ(passes.front().aos, 0.0);
}

TEST(Passes, RejectsBadArguments) {
  const Ephemeris eph = day_ephemeris();
  EXPECT_THROW((void)find_passes(eph, kCookeville, 0.0, 0.3), PreconditionError);
  EXPECT_THROW((void)find_passes(eph, kCookeville, 100.0, 0.3, 0.0),
               PreconditionError);
}

}  // namespace
}  // namespace qntn::orbit
