#include "orbit/passes.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "geo/frames.hpp"
#include "orbit/constellation.hpp"

namespace qntn::orbit {
namespace {

const geo::Geodetic kCookeville = geo::Geodetic::from_degrees(36.18, -85.51, 0.0);

Ephemeris day_ephemeris(std::size_t which = 0) {
  const auto elements = qntn_constellation(6);
  return Ephemeris::generate(TwoBodyPropagator(elements[which]), 86'400.0, 30.0);
}

TEST(Passes, LeoPassesExistAndAreShort) {
  const Ephemeris eph = day_ephemeris();
  const auto passes =
      find_passes(eph, kCookeville, 86'400.0, deg_to_rad(20.0));
  ASSERT_GT(passes.size(), 0u);
  for (const Pass& pass : passes) {
    EXPECT_LT(pass.aos, pass.los);
    EXPECT_GE(pass.culmination, pass.aos);
    EXPECT_LE(pass.culmination, pass.los);
    // A 500 km pass above 20 deg lasts minutes, not hours.
    EXPECT_LT(pass.duration(), 12.0 * 60.0);
    EXPECT_GT(pass.duration(), 10.0);
    EXPECT_GE(pass.max_elevation, deg_to_rad(20.0));
    EXPECT_LE(pass.max_elevation, deg_to_rad(90.0) + 1e-9);
  }
}

TEST(Passes, RefinedCrossingsSitOnTheMask) {
  const Ephemeris eph = day_ephemeris();
  const double mask = deg_to_rad(25.0);
  const auto passes = find_passes(eph, kCookeville, 86'400.0, mask);
  ASSERT_GT(passes.size(), 0u);
  for (const Pass& pass : passes) {
    if (pass.aos > 0.0) {  // interior crossing, not clipped at t = 0
      const double el =
          geo::look_angles(kCookeville, eph.position_ecef(pass.aos)).elevation;
      EXPECT_NEAR(el, mask, 1e-3) << "aos";
    }
    if (pass.los < 86'400.0) {
      const double el =
          geo::look_angles(kCookeville, eph.position_ecef(pass.los)).elevation;
      EXPECT_NEAR(el, mask, 1e-3) << "los";
    }
  }
}

TEST(Passes, HigherMaskMeansFewerShorterPasses) {
  const Ephemeris eph = day_ephemeris();
  const auto low = find_passes(eph, kCookeville, 86'400.0, deg_to_rad(10.0));
  const auto high = find_passes(eph, kCookeville, 86'400.0, deg_to_rad(45.0));
  const PassStatistics low_stats = summarize_passes(low);
  const PassStatistics high_stats = summarize_passes(high);
  EXPECT_GT(low_stats.total_contact, high_stats.total_contact);
  EXPECT_GE(low_stats.count, high_stats.count);
  if (high_stats.count > 0) {
    EXPECT_LT(high_stats.mean_duration, low_stats.mean_duration);
  }
}

TEST(Passes, PassesAreDisjointAndOrdered) {
  const Ephemeris eph = day_ephemeris(3);
  const auto passes = find_passes(eph, kCookeville, 86'400.0, deg_to_rad(20.0));
  for (std::size_t i = 1; i < passes.size(); ++i) {
    EXPECT_GT(passes[i].aos, passes[i - 1].los);
  }
}

TEST(Passes, EmptyWhenMaskUnreachable) {
  const Ephemeris eph = day_ephemeris();
  // An 89.9 deg mask is (essentially) never met.
  const auto passes =
      find_passes(eph, kCookeville, 86'400.0, deg_to_rad(89.9));
  EXPECT_TRUE(passes.empty());
}

TEST(Passes, SummaryOfEmptyListIsZero) {
  const PassStatistics stats = summarize_passes({});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.total_contact, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_duration, 0.0);
}

TEST(Passes, RejectsBadArguments) {
  const Ephemeris eph = day_ephemeris();
  EXPECT_THROW((void)find_passes(eph, kCookeville, 0.0, 0.3), PreconditionError);
  EXPECT_THROW((void)find_passes(eph, kCookeville, 100.0, 0.3, 0.0),
               PreconditionError);
}

}  // namespace
}  // namespace qntn::orbit
