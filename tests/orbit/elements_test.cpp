#include "orbit/elements.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/units.hpp"

namespace qntn::orbit {
namespace {

KeplerianElements qntn_orbit(double nu = 0.0) {
  KeplerianElements el;
  el.semi_major_axis = 6'871'000.0;
  el.eccentricity = 0.0;
  el.inclination = deg_to_rad(53.0);
  el.raan = deg_to_rad(60.0);
  el.arg_perigee = 0.0;
  el.true_anomaly = nu;
  return el;
}

TEST(Elements, PeriodMatchesKeplersThirdLaw) {
  const KeplerianElements el = qntn_orbit();
  // T = 2 pi sqrt(a^3/mu): about 94.6 minutes for a 500 km orbit.
  EXPECT_NEAR(el.period() / 60.0, 94.6, 0.2);
  EXPECT_NEAR(el.mean_motion() * el.period(), kTwoPi, 1e-9);
}

TEST(Elements, CircularOrbitRadiusEqualsSemiMajorAxis) {
  for (double nu = 0.0; nu < kTwoPi; nu += 0.5) {
    const StateVector s = elements_to_state(qntn_orbit(nu));
    EXPECT_NEAR(s.position.norm(), 6'871'000.0, 1e-3);
  }
}

TEST(Elements, CircularOrbitSpeedIsVisViva) {
  const StateVector s = elements_to_state(qntn_orbit(1.0));
  const double v_circ = std::sqrt(kEarthMu / 6'871'000.0);
  EXPECT_NEAR(s.velocity.norm(), v_circ, 1e-6);
  // Velocity perpendicular to position on a circular orbit.
  EXPECT_NEAR(s.position.dot(s.velocity), 0.0, 1.0);
}

TEST(Elements, InclinationRecoveredFromAngularMomentum) {
  const StateVector s = elements_to_state(qntn_orbit(2.2));
  const Vec3 h = s.position.cross(s.velocity);
  const double inclination = std::acos(h.z / h.norm());
  EXPECT_NEAR(inclination, deg_to_rad(53.0), 1e-12);
}

TEST(Elements, RaanRecoveredFromNodeVector) {
  const StateVector s = elements_to_state(qntn_orbit(0.7));
  const Vec3 h = s.position.cross(s.velocity);
  const Vec3 node = Vec3{0.0, 0.0, 1.0}.cross(h);
  const double raan = std::atan2(node.y, node.x);
  EXPECT_NEAR(raan, deg_to_rad(60.0), 1e-12);
}

TEST(Elements, EllipticalPerigeeAndApogeeRadii) {
  KeplerianElements el;
  el.semi_major_axis = 10'000'000.0;
  el.eccentricity = 0.3;
  el.inclination = 0.5;
  el.raan = 1.0;
  el.arg_perigee = 0.4;
  el.true_anomaly = 0.0;  // perigee
  EXPECT_NEAR(elements_to_state(el).position.norm(),
              el.semi_major_axis * (1.0 - el.eccentricity), 1e-3);
  el.true_anomaly = kPi;  // apogee
  EXPECT_NEAR(elements_to_state(el).position.norm(),
              el.semi_major_axis * (1.0 + el.eccentricity), 1e-3);
}

TEST(Elements, SpecificOrbitalEnergyMatchesVisViva) {
  KeplerianElements el;
  el.semi_major_axis = 8'000'000.0;
  el.eccentricity = 0.2;
  el.inclination = 1.0;
  el.true_anomaly = 1.7;
  const StateVector s = elements_to_state(el);
  const double energy =
      0.5 * s.velocity.norm_sq() - kEarthMu / s.position.norm();
  EXPECT_NEAR(energy, -kEarthMu / (2.0 * el.semi_major_axis), 1e-3);
}

TEST(Elements, EquatorialOrbitStaysInPlane) {
  KeplerianElements el;
  el.semi_major_axis = 7'000'000.0;
  el.inclination = 0.0;
  for (double nu = 0.0; nu < kTwoPi; nu += 0.9) {
    el.true_anomaly = nu;
    EXPECT_NEAR(elements_to_state(el).position.z, 0.0, 1e-6);
  }
}

TEST(Elements, RejectsNonPositiveSemiMajorAxis) {
  KeplerianElements el;
  el.semi_major_axis = 0.0;
  EXPECT_THROW((void)elements_to_state(el), PreconditionError);
}

}  // namespace
}  // namespace qntn::orbit
