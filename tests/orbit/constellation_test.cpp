#include "orbit/constellation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <set>

#include "common/constants.hpp"
#include "common/units.hpp"

namespace qntn::orbit {
namespace {

TEST(Walker, CountsAndSpacing) {
  const auto sats = walker_delta(6'871'000.0, deg_to_rad(53.0), 36, 6, 1);
  ASSERT_EQ(sats.size(), 36u);
  std::set<long> raans;
  for (const KeplerianElements& el : sats) {
    EXPECT_DOUBLE_EQ(el.semi_major_axis, 6'871'000.0);
    EXPECT_DOUBLE_EQ(el.inclination, deg_to_rad(53.0));
    EXPECT_DOUBLE_EQ(el.eccentricity, 0.0);
    raans.insert(std::lround(rad_to_deg(el.raan)));
  }
  EXPECT_EQ(raans, (std::set<long>{0, 60, 120, 180, 240, 300}));
}

TEST(Walker, PhasingShiftsAnomalyBetweenPlanes) {
  const auto f0 = walker_delta(7e6, 1.0, 12, 3, 0);
  const auto f1 = walker_delta(7e6, 1.0, 12, 3, 1);
  // Plane 0 is identical; plane 1 of f1 is shifted by 2*pi*f/t = 30 deg.
  EXPECT_DOUBLE_EQ(f0[0].true_anomaly, f1[0].true_anomaly);
  EXPECT_NEAR(f1[4].true_anomaly - f0[4].true_anomaly, kTwoPi / 12.0, 1e-12);
}

TEST(Walker, RejectsInvalidShape) {
  EXPECT_THROW((void)walker_delta(7e6, 1.0, 35, 6, 0), PreconditionError);
  EXPECT_THROW((void)walker_delta(7e6, 1.0, 36, 0, 0), PreconditionError);
  EXPECT_THROW((void)walker_delta(7e6, 1.0, 36, 6, 6), PreconditionError);
}

TEST(QntnConstellation, PaperTableIIAnomalies) {
  // Every plane hosts 6 satellites at anomalies 0,60,...,300 (Table II).
  const auto sats = qntn_constellation(108);
  ASSERT_EQ(sats.size(), 108u);
  for (std::size_t plane = 0; plane < 18; ++plane) {
    for (std::size_t s = 0; s < 6; ++s) {
      EXPECT_NEAR(rad_to_deg(sats[plane * 6 + s].true_anomaly),
                  static_cast<double>(s) * 60.0, 1e-9);
    }
  }
}

TEST(QntnConstellation, PaperPlaneRaanFillOrder) {
  const auto& raans = qntn_plane_raans_deg();
  ASSERT_EQ(raans.size(), 18u);
  // Walker planes first (Section II-B)...
  const std::vector<double> walker{0, 60, 120, 180, 240, 300};
  for (std::size_t i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(raans[i], walker[i]);
  // ...then all 18 planes cover every 20-degree slot exactly once.
  std::set<long> all;
  for (double r : raans) all.insert(std::lround(r));
  std::set<long> expected;
  for (long r = 0; r < 360; r += 20) expected.insert(r);
  EXPECT_EQ(all, expected);
}

TEST(QntnConstellation, TruncationTakesWholePlanesInOrder) {
  const auto small = qntn_constellation(12);
  ASSERT_EQ(small.size(), 12u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(rad_to_deg(small[i].raan), 0.0, 1e-9);
    EXPECT_NEAR(rad_to_deg(small[6 + i].raan), 60.0, 1e-9);
  }
  // Prefix property: the first 12 satellites of the 108 set are the 12 set.
  const auto big = qntn_constellation(108);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_DOUBLE_EQ(small[i].raan, big[i].raan);
    EXPECT_DOUBLE_EQ(small[i].true_anomaly, big[i].true_anomaly);
  }
}

TEST(QntnConstellation, AltitudeIs500Km) {
  for (const KeplerianElements& el : qntn_constellation(6)) {
    EXPECT_DOUBLE_EQ(el.semi_major_axis, 6'871'000.0);  // Re + 500 km (paper)
    EXPECT_DOUBLE_EQ(el.inclination, deg_to_rad(53.0));
  }
}

TEST(QntnConstellation, RejectsInvalidSizes) {
  EXPECT_THROW((void)qntn_constellation(0), PreconditionError);
  EXPECT_THROW((void)qntn_constellation(7), PreconditionError);
  EXPECT_THROW((void)qntn_constellation(114), PreconditionError);
}

TEST(QntnConstellation, AllSizesOfThePaperSweepAreValid) {
  for (std::size_t n = 6; n <= 108; n += 6) {
    EXPECT_EQ(qntn_constellation(n).size(), n);
  }
}

}  // namespace
}  // namespace qntn::orbit
