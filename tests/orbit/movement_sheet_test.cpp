#include "orbit/movement_sheet.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "orbit/constellation.hpp"

namespace qntn::orbit {
namespace {

Ephemeris sample_ephemeris(double duration = 3600.0, double step = 30.0) {
  const auto elements = qntn_constellation(6);
  return Ephemeris::generate(TwoBodyPropagator(elements[2]), duration, step);
}

TEST(MovementSheet, StringRoundTripPreservesTrajectory) {
  const Ephemeris original = sample_ephemeris();
  const std::string text = movement_sheet_to_string(original);
  const Ephemeris loaded = movement_sheet_from_string(text);
  ASSERT_EQ(loaded.sample_count(), original.sample_count());
  EXPECT_DOUBLE_EQ(loaded.step(), original.step());
  for (std::size_t i = 0; i < original.sample_count(); i += 7) {
    // Six decimal places of lat/lon/alt keep positions to ~0.2 m.
    EXPECT_NEAR(distance(loaded.sample(i), original.sample(i)), 0.0, 1.0) << i;
  }
}

TEST(MovementSheet, FileRoundTrip) {
  const Ephemeris original = sample_ephemeris(600.0, 30.0);
  const std::string path = ::testing::TempDir() + "/qntn_sheet_test.csv";
  save_movement_sheet(path, original);
  const Ephemeris loaded = load_movement_sheet(path);
  EXPECT_EQ(loaded.sample_count(), original.sample_count());
  EXPECT_NEAR(distance(loaded.position_ecef(300.0),
                       original.position_ecef(300.0)),
              0.0, 1.0);
}

TEST(MovementSheet, HeaderIsTheStkStyleSchema) {
  const std::string text = movement_sheet_to_string(sample_ephemeris(60.0, 30.0));
  EXPECT_EQ(text.substr(0, text.find('\n')),
            "time_s,latitude_deg,longitude_deg,altitude_m");
}

TEST(MovementSheet, RejectsMalformedInput) {
  EXPECT_THROW((void)movement_sheet_from_string(""), Error);
  EXPECT_THROW((void)movement_sheet_from_string("wrong,header\n0,1,2,3\n"),
               Error);
  const std::string header = "time_s,latitude_deg,longitude_deg,altitude_m\n";
  // Too few samples.
  EXPECT_THROW((void)movement_sheet_from_string(header + "0,10,20,500000\n"),
               Error);
  // Malformed row.
  EXPECT_THROW(
      (void)movement_sheet_from_string(header + "0,10,20,5\n30,oops\n"), Error);
  // Non-uniform spacing.
  EXPECT_THROW((void)movement_sheet_from_string(
                   header + "0,10,20,5\n30,10,20,5\n90,10,20,5\n"),
               Error);
  // Time not starting at zero.
  EXPECT_THROW((void)movement_sheet_from_string(
                   header + "10,10,20,5\n40,10,20,5\n"),
               Error);
  // Missing file.
  EXPECT_THROW((void)load_movement_sheet("/nonexistent/sheet.csv"), Error);
}

TEST(MovementSheet, LoadedSheetDrivesTheSimulator) {
  // The paper's workflow: import a movement sheet and attach it to a
  // satellite node. The Ephemeris API is the same either way.
  const Ephemeris original = sample_ephemeris(900.0, 30.0);
  const Ephemeris loaded =
      movement_sheet_from_string(movement_sheet_to_string(original));
  // Interpolated queries agree within the text round-trip tolerance.
  for (double t : {0.0, 123.0, 456.0, 900.0}) {
    EXPECT_NEAR(distance(loaded.position_ecef(t), original.position_ecef(t)),
                0.0, 1.5)
        << t;
  }
}

}  // namespace
}  // namespace qntn::orbit
