#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>
#include <tuple>

#include "common/constants.hpp"
#include "common/units.hpp"
#include "orbit/elements.hpp"

namespace qntn::orbit {
namespace {

TEST(Kepler, CircularOrbitIsIdentity) {
  for (double m = -3.0; m <= 3.0; m += 0.37) {
    EXPECT_NEAR(solve_kepler(m, 0.0), wrap_pi(m), 1e-15);
  }
}

TEST(Kepler, KnownSolution) {
  // Vallado example: M = 235.4 deg, e = 0.4 -> E = 220.512074767522 deg.
  const double m = deg_to_rad(235.4);
  const double e_anom = solve_kepler(m, 0.4);
  EXPECT_NEAR(wrap_two_pi(e_anom), deg_to_rad(220.512074767522), 1e-9);
}

TEST(Kepler, RejectsHyperbolicEccentricity) {
  EXPECT_THROW((void)solve_kepler(1.0, 1.0), PreconditionError);
  EXPECT_THROW((void)solve_kepler(1.0, -0.1), PreconditionError);
}

/// Residual property over an (e, M) grid, including extreme eccentricity.
class KeplerGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(KeplerGrid, ResidualBelowTolerance) {
  const auto [e, m] = GetParam();
  const double e_anom = solve_kepler(m, e);
  EXPECT_NEAR(e_anom - e * std::sin(e_anom), wrap_pi(m), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KeplerGrid,
    ::testing::Combine(
        ::testing::Values(0.0, 0.001, 0.1, 0.3, 0.5, 0.7, 0.9, 0.97, 0.99),
        ::testing::Values(-3.1, -2.0, -1.0, -0.1, 0.0, 0.1, 0.5, 1.0, 2.0,
                          3.0, 3.14, 6.0, 12.5)));

/// Anomaly conversions must be mutually inverse.
class AnomalyRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AnomalyRoundTrip, EccentricTrueEccentric) {
  const auto [e, nu] = GetParam();
  const double e_anom = true_to_eccentric_anomaly(nu, e);
  const double nu_back = eccentric_to_true_anomaly(e_anom, e);
  EXPECT_NEAR(wrap_pi(nu_back - nu), 0.0, 1e-12);
}

TEST_P(AnomalyRoundTrip, MeanAnomalyConsistentWithKeplerSolve) {
  const auto [e, nu] = GetParam();
  const double m = true_to_mean_anomaly(nu, e);
  const double e_anom = solve_kepler(m, e);
  EXPECT_NEAR(wrap_pi(eccentric_to_true_anomaly(e_anom, e) - nu), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AnomalyRoundTrip,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.5, 0.8),
                       ::testing::Values(-3.0, -1.5, -0.5, 0.0, 0.5, 1.5,
                                         2.5, 3.0)));

TEST(Anomaly, ZeroAtPerigeeForAllEccentricities) {
  for (double e : {0.0, 0.3, 0.9}) {
    EXPECT_DOUBLE_EQ(true_to_eccentric_anomaly(0.0, e), 0.0);
    EXPECT_DOUBLE_EQ(true_to_mean_anomaly(0.0, e), 0.0);
  }
}

}  // namespace
}  // namespace qntn::orbit
