#include "orbit/ephemeris.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/units.hpp"
#include "geo/frames.hpp"

namespace qntn::orbit {
namespace {

TwoBodyPropagator qntn_sat() {
  KeplerianElements el;
  el.semi_major_axis = 6'871'000.0;
  el.eccentricity = 0.0;
  el.inclination = deg_to_rad(53.0);
  el.raan = 0.0;
  el.arg_perigee = 0.0;
  el.true_anomaly = 0.0;
  return TwoBodyPropagator(el);
}

TEST(Ephemeris, SampleCountForOneDayAt30s) {
  const Ephemeris eph = Ephemeris::generate(qntn_sat(), 86'400.0, 30.0);
  // 2880 intervals + the initial sample (the paper's STK movement sheets
  // record positions every 30 seconds over a day).
  EXPECT_EQ(eph.sample_count(), 2881u);
  EXPECT_DOUBLE_EQ(eph.step(), 30.0);
  EXPECT_DOUBLE_EQ(eph.duration(), 86'400.0);
}

TEST(Ephemeris, GridSamplesMatchPropagatorWithEarthRotation) {
  const TwoBodyPropagator prop = qntn_sat();
  const Ephemeris eph = Ephemeris::generate(prop, 3600.0, 30.0, 0.5);
  for (double t : {0.0, 300.0, 1800.0, 3600.0}) {
    const Vec3 expected =
        geo::eci_to_ecef(prop.state_at(t).position, geo::gmst_at(t, 0.5));
    EXPECT_NEAR(distance(eph.position_ecef(t), expected), 0.0, 1e-6) << t;
  }
}

TEST(Ephemeris, InterpolationStaysNearOrbitShell) {
  const Ephemeris eph = Ephemeris::generate(qntn_sat(), 3600.0, 30.0);
  // Mid-sample queries: the 30 s chord is ~229 km, so linear interpolation
  // sags below the shell by chord^2 / (8 r) ~ 0.9 km — 0.2% of the shortest
  // link range, far below the FSO budget's sensitivity.
  for (double t = 15.0; t < 3600.0; t += 150.0) {
    const double sag = 6'871'000.0 - eph.position_ecef(t).norm();
    EXPECT_GT(sag, 0.0);      // always sags inwards
    EXPECT_LT(sag, 1'000.0);  // bounded by the chord geometry
  }
}

TEST(Ephemeris, QueriesClampToSampledSpan) {
  const Ephemeris eph = Ephemeris::generate(qntn_sat(), 600.0, 30.0);
  EXPECT_NEAR(distance(eph.position_ecef(-100.0), eph.sample(0)), 0.0, 0.0);
  EXPECT_NEAR(
      distance(eph.position_ecef(1e9), eph.sample(eph.sample_count() - 1)), 0.0,
      0.0);
}

TEST(Ephemeris, GroundTrackLatitudeBoundedByInclination) {
  const Ephemeris eph = Ephemeris::generate(qntn_sat(), 86'400.0, 60.0);
  double max_lat = 0.0;
  for (double t = 0.0; t < 86'400.0; t += 120.0) {
    max_lat = std::max(max_lat, std::fabs(eph.ground_point(t).latitude));
  }
  // Circular inclined orbit: |latitude| <= inclination (plus ellipsoid fuzz).
  EXPECT_LT(max_lat, deg_to_rad(53.5));
  EXPECT_GT(max_lat, deg_to_rad(52.0));  // and it actually reaches it
}

TEST(Ephemeris, GroundTrackAltitudeIsZero) {
  const Ephemeris eph = Ephemeris::generate(qntn_sat(), 600.0, 30.0);
  EXPECT_DOUBLE_EQ(eph.ground_point(120.0).altitude, 0.0);
}

TEST(Ephemeris, ExternallyProvidedSamples) {
  std::vector<Vec3> samples{{1.0, 0.0, 0.0}, {2.0, 0.0, 0.0}, {3.0, 0.0, 0.0}};
  const Ephemeris eph(std::move(samples), 10.0);
  EXPECT_DOUBLE_EQ(eph.position_ecef(5.0).x, 1.5);
  EXPECT_DOUBLE_EQ(eph.position_ecef(10.0).x, 2.0);
}

TEST(Ephemeris, RejectsDegenerateInput) {
  EXPECT_THROW((void)Ephemeris({{1, 0, 0}}, 30.0), PreconditionError);
  EXPECT_THROW((void)Ephemeris({{1, 0, 0}, {2, 0, 0}}, 0.0), PreconditionError);
  EXPECT_THROW((void)Ephemeris::generate(qntn_sat(), -1.0, 30.0), PreconditionError);
}

}  // namespace
}  // namespace qntn::orbit
