#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/include_graph.hpp"
#include "lint/scan.hpp"

// Tree-level golden fixtures for the qntn_lint whole-repo passes. Each
// directory under tests/lint/fixtures/trees/ is a miniature repo root in
// which exactly one class of finding fires (plus one clean tree pinned to
// zero findings), proving every pass can actually fail — the repo-is-clean
// test alone would also pass with a checker that checks nothing.

namespace {

using qntn::lint::Finding;

std::string tree_path(const std::string& name) {
  return std::string(QNTN_LINT_FIXTURE_DIR) + "/trees/" + name;
}

std::vector<Finding> check_tree_fixture(const std::string& name) {
  return qntn::lint::check_tree(tree_path(name));
}

std::vector<Finding> with_rule(const std::vector<Finding>& findings,
                               const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

TEST(LintTree, LayerViolationFires) {
  const auto findings = check_tree_fixture("layer_violation");
  const auto hits = with_rule(findings, "layer-violation");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/geo/shape.hpp");
  EXPECT_EQ(hits[0].line, 3u);
  // The diagnostic names the offending include chain and both layers.
  EXPECT_NE(hits[0].message.find("src/geo/shape.hpp -> src/sim/engine.hpp"),
            std::string::npos);
  EXPECT_EQ(findings.size(), hits.size()) << "unexpected extra findings";
}

TEST(LintTree, IncludeCycleFires) {
  const auto findings = check_tree_fixture("include_cycle");
  const auto hits = with_rule(findings, "include-cycle");
  ASSERT_EQ(hits.size(), 1u);
  // One finding per strongly connected component, with a concrete chain
  // that starts and ends at the same file.
  EXPECT_NE(hits[0].message.find("src/common/a.hpp -> src/common/b.hpp -> "
                                 "src/common/a.hpp"),
            std::string::npos);
  EXPECT_EQ(findings.size(), hits.size());
}

TEST(LintTree, ConsistencyMismatchFiresInEveryDirection) {
  const auto findings = check_tree_fixture("consistency_mismatch");
  const std::map<std::string, std::string> expected = {
      {"counter-undocumented", "net.undocumented_counter"},
      {"span-undocumented", "net.undocumented_span"},
      {"config-key-undocumented", "gamma"},
      {"counter-stale-doc", "net.stale_counter"},
      {"span-stale-doc", "net.stale_span"},
      {"span-stale-golden", "ghost.span"},
      {"config-key-stale-doc", "delta"},
      {"config-key-unserialized", "gamma"},
      {"config-key-unparsed", "beta"},
  };
  for (const auto& [rule, name] : expected) {
    const auto hits = with_rule(findings, rule);
    ASSERT_EQ(hits.size(), 1u) << rule;
    EXPECT_NE(hits[0].message.find("'" + name + "'"), std::string::npos)
        << rule << ": " << hits[0].message;
  }
  EXPECT_EQ(findings.size(), expected.size());
}

TEST(LintTree, StaleSuppressionFires) {
  const auto findings = check_tree_fixture("stale_suppression");
  const auto hits = with_rule(findings, "stale-suppression");
  ASSERT_EQ(hits.size(), 2u);
  // A known token whose rule does not fire, and an unknown token.
  EXPECT_NE(hits[0].message.find("ordered-ok"), std::string::npos);
  EXPECT_NE(hits[0].message.find("justifies nothing"), std::string::npos);
  EXPECT_NE(hits[1].message.find("bogus-token"), std::string::npos);
  EXPECT_NE(hits[1].message.find("no known rule token"), std::string::npos);
  EXPECT_EQ(findings.size(), hits.size());
}

TEST(LintTree, CleanTreeHasNoFindings) {
  const auto findings = check_tree_fixture("clean");
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

// The layer table has to grow with the tree: every directory under src/
// appears in it exactly once, and every src-module row matches a real
// directory (tools/bench/examples/tests rows are top-level, not under
// src/).
TEST(LintLayers, LayerTableCoversSrcDirectoriesExactlyOnce) {
  namespace fs = std::filesystem;
  std::set<std::string> src_dirs;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(fs::path(QNTN_LINT_SOURCE_DIR) / "src")) {
    if (entry.is_directory()) {
      src_dirs.insert(entry.path().filename().string());
    }
  }
  ASSERT_FALSE(src_dirs.empty());

  const std::set<std::string> top_level = {"tools", "bench", "examples",
                                           "tests"};
  std::map<std::string, int> row_count;
  for (const qntn::lint::LayerEntry& entry : qntn::lint::default_layers()) {
    ++row_count[std::string(entry.module)];
  }
  for (const std::string& dir : src_dirs) {
    EXPECT_EQ(row_count[dir], 1)
        << "src/" << dir << " must appear exactly once in the layer table "
        << "(src/lint/include_graph.cpp)";
  }
  for (const auto& [module, count] : row_count) {
    EXPECT_EQ(count, 1) << module << " listed more than once";
    if (top_level.count(module) == 0) {
      EXPECT_EQ(src_dirs.count(module), 1u)
          << "layer table row '" << module << "' matches no src/ directory";
    }
  }
}

TEST(LintTree, PassRulesHaveNamesAndMessages) {
  std::set<std::string_view> names;
  for (const qntn::lint::RuleSpec& rule : qntn::lint::rules()) {
    names.insert(rule.name);
  }
  for (const qntn::lint::PassRule& rule : qntn::lint::pass_rules()) {
    EXPECT_FALSE(rule.name.empty());
    EXPECT_FALSE(rule.message.empty()) << rule.name;
    EXPECT_TRUE(names.insert(rule.name).second)
        << "duplicate rule name " << rule.name;
  }
}

TEST(LintGraph, DotAndJsonDescribeTheFixtureModules) {
  const qntn::lint::TreeScan scan =
      qntn::lint::load_tree(tree_path("layer_violation"));
  const qntn::lint::IncludeGraph graph =
      qntn::lint::build_include_graph(scan.text);
  const auto& layers = qntn::lint::default_layers();

  const std::string dot = qntn::lint::graph_dot(graph, layers);
  EXPECT_NE(dot.find("digraph qntn_includes"), std::string::npos);
  EXPECT_NE(dot.find("\"geo\" -> \"sim\""), std::string::npos);

  const std::string json = qntn::lint::graph_json(graph, layers);
  EXPECT_NE(json.find("\"version\": \"qntn-include-graph-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("{\"from\": \"geo\", \"to\": \"sim\", \"includes\": 1}"),
            std::string::npos);
}

TEST(LintJson, FindingsDocumentIsStableAndEscaped) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 7, "layer-violation", "uses \"quotes\" and\ttabs"}};
  const std::string json = qntn::lint::findings_json(findings, 3);
  EXPECT_NE(json.find("\"version\": \"qntn-lint-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"files\": 3"), std::string::npos);
  EXPECT_NE(json.find("{\"file\": \"src/a.cpp\", \"line\": 7, "
                      "\"rule\": \"layer-violation\", "
                      "\"message\": \"uses \\\"quotes\\\" and\\ttabs\"}"),
            std::string::npos);
}

}  // namespace
