// Fixture: clean under wall-clock. Durations come from steady_clock and the
// one justified exception carries its token.
#include <chrono>
#include <ctime>

double elapsed_s() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// The profiler epoch is allowed to read the wall clock once at startup.
long justified_epoch() {
  return static_cast<long>(std::time(nullptr));  // lint: wall-clock-ok
}
