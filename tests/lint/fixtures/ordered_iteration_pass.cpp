// Fixture: clean under ordered-iteration as an emitter file. Emission walks
// a sorted std::map; the unordered lookup table is only probed, and the one
// justified loop carries its token.
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>

void emit_counters(const std::map<std::string, long>& sorted,
                   const std::unordered_map<std::string, long>& lookup) {
  for (const auto& [name, value] : sorted) {
    std::printf("%s=%ld\n", name.c_str(), value);
  }
  long total = 0;
  // Summation is commutative: visitation order cannot reach the output.
  for (const auto& [name, value] : lookup) {  // lint: ordered-ok
    total += value;
  }
  std::printf("total=%ld\n", total);
}
