// Fixture: violates float-format when treated as an emitter file (the test
// presents it under a src/obs/ path). Fixed-precision %f and iomanip
// precision both drift with locale/width choices.
#include <cstdio>
#include <iomanip>
#include <sstream>

void emit_metrics(double value) {
  std::printf("{\"mean\": %.3f}\n", value);
  std::ostringstream out;
  out << std::fixed << std::setprecision(6) << value;
}
