// Fixture: clean under float-format even as an emitter file. %.10g is the
// canonical deterministic float rendering; %zu and %s are not floats.
#include <cstdio>

void emit_metrics(double value, std::size_t count) {
  std::printf("{\"mean\": %.10g, \"count\": %zu}\n", value, count);
}
