// Fixture: violates wall-clock (system time reaches a result).
#include <chrono>
#include <ctime>

long stamp_run() {
  const std::time_t now = std::time(nullptr);
  const auto tick = std::chrono::system_clock::now();
  return static_cast<long>(now) + tick.time_since_epoch().count();
}
