// Fixture: clean under rng-source. Draws from the project Rng, seeded from
// the scenario config; mentions of std::rand in comments do not count.
#include "common/rng.hpp"

double clean_sample(qntn::Rng& rng) { return rng.uniform(); }
