#pragma once

namespace fixture::common {
constexpr int answer() { return 42; }
}  // namespace fixture::common
