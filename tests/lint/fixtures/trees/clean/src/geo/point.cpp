#include "common/util.hpp"

namespace fixture::geo {

int origin_tag() { return fixture::common::answer(); }

}  // namespace fixture::geo
