namespace fixture::net {

// lint: ordered-ok
int plain_sum(int a, int b) { return a + b; }

// lint: bogus-token
int plain_product(int a, int b) { return a * b; }

}  // namespace fixture::net
