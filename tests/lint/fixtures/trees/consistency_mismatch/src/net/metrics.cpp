namespace obs {
void count(const char*, long);
struct Span {
  explicit Span(const char*);
};
}  // namespace obs

namespace fixture::net {

void tick() {
  obs::count("net.undocumented_counter", 1);
  obs::Span span("net.undocumented_span");
}

}  // namespace fixture::net
