#include <functional>
#include <map>
#include <string>

namespace fixture::core {

// Parse table: alpha and gamma are accepted keys.
std::map<std::string, std::function<void(double)>> parse_table(double& alpha,
                                                               double& gamma) {
  return {
      {"alpha", [&](double v) { alpha = v; }},
      {"gamma", [&](double v) { gamma = v; }},
  };
}

// Serializer: writes alpha and beta — beta is unparsed, gamma unserialized.
std::string serialize(double alpha, double beta) {
  std::string out;
  out += "alpha = " + std::to_string(alpha) + "\n";
  out += "beta = " + std::to_string(beta) + "\n";
  return out;
}

}  // namespace fixture::core
