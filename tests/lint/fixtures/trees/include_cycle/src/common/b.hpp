#pragma once

#include "common/a.hpp"

namespace fixture {
struct B {
  int value = 0;
};
}  // namespace fixture
