#pragma once

#include "common/b.hpp"

namespace fixture {
struct A {
  int value = 0;
};
}  // namespace fixture
