#pragma once

#include "sim/engine.hpp"

namespace fixture::geo {
struct Shape {
  fixture::sim::Engine engine;  // geo (layer 1) must not reach sim (layer 4)
};
}  // namespace fixture::geo
