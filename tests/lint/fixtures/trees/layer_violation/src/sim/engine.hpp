#pragma once

namespace fixture::sim {
struct Engine {
  int steps = 0;
};
}  // namespace fixture::sim
