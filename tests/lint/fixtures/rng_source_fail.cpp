// Fixture: violates rng-source (ad-hoc randomness outside common/rng.hpp).
#include <cstdlib>
#include <random>

int noisy_sample() {
  std::random_device entropy;
  std::srand(entropy());
  return std::rand();
}
