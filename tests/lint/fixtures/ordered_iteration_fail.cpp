// Fixture: violates ordered-iteration when treated as an emitter file.
// Hash-map order reaches the emitted bytes directly.
#include <cstdio>
#include <string>
#include <unordered_map>

void emit_counters(const std::unordered_map<std::string, long>& counters) {
  for (const auto& [name, value] : counters) {
    std::printf("%s=%ld\n", name.c_str(), value);
  }
}
