#pragma once

// Fixture: clean under header-pragma — the first directive is pragma once.
struct Guarded {
  int value = 0;
};
