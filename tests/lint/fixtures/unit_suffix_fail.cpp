// Fixture: violates unit-suffix (spelled-out unit names instead of the
// canonical common/units.hpp suffixes).
struct PassWindow {
  double rise_seconds = 0.0;
  double slant_kilometers = 0.0;
};

double dwell_minutes(const PassWindow& w, double mask_degrees) {
  return (w.rise_seconds + mask_degrees) / 60.0;
}
