// Fixture: violates header-pragma (classic include guard, no pragma once).
#ifndef QNTN_TESTS_LINT_FIXTURES_HEADER_PRAGMA_FAIL_HPP
#define QNTN_TESTS_LINT_FIXTURES_HEADER_PRAGMA_FAIL_HPP

struct Guarded {
  int value = 0;
};

#endif
