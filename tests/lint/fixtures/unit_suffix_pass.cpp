// Fixture: clean under unit-suffix. Canonical suffixes throughout; a
// dimensionless count needs no suffix at all.
struct PassWindow {
  double rise_s = 0.0;
  double slant_km = 0.0;
  double mask_deg = 0.0;
  double loss_db = 0.0;
  int samples = 0;
};

double dwell_s(const PassWindow& w) { return w.rise_s + w.mask_deg; }
