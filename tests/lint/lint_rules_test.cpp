#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/rules.hpp"
#include "lint/scan.hpp"

// Golden-fixture tests for the qntn_lint rule engine. Each rule has one
// passing and one failing sample under tests/lint/fixtures/ (a directory
// the repo scan deliberately skips). The emitter-scoped rules only apply
// under src/obs/ paths, so fixtures are read from disk but presented to
// check_source under a synthetic repo-relative path.

namespace {

using qntn::lint::Finding;
using qntn::lint::check_source;
using qntn::lint::strip_source;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(QNTN_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Finding> check_fixture(const std::string& name,
                                   const std::string& as_path) {
  return check_source(as_path, read_fixture(name));
}

bool fired(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

TEST(LintRules, RngSourceFailsOnAdHocRandomness) {
  const auto findings = check_fixture("rng_source_fail.cpp", "src/x/f.cpp");
  EXPECT_TRUE(fired(findings, "rng-source"));
  EXPECT_GE(findings.size(), 2u);  // random_device, srand, rand
}

TEST(LintRules, RngSourcePassesOnProjectRng) {
  EXPECT_TRUE(check_fixture("rng_source_pass.cpp", "src/x/f.cpp").empty());
}

TEST(LintRules, RngSourceAllowsTheRngHeaderItself) {
  EXPECT_FALSE(fired(
      check_fixture("rng_source_fail.cpp", "src/common/rng.hpp"),
      "rng-source"));
}

TEST(LintRules, WallClockFailsOnSystemTime) {
  const auto findings = check_fixture("wall_clock_fail.cpp", "src/x/f.cpp");
  EXPECT_TRUE(fired(findings, "wall-clock"));
}

TEST(LintRules, WallClockPassesOnSteadyClockAndJustifiedRead) {
  EXPECT_TRUE(check_fixture("wall_clock_pass.cpp", "src/x/f.cpp").empty());
}

TEST(LintRules, FloatFormatFailsInEmitterFile) {
  const auto findings =
      check_fixture("float_format_fail.cpp", "src/obs/emit.cpp");
  EXPECT_TRUE(fired(findings, "float-format"));
}

TEST(LintRules, FloatFormatIgnoredOutsideEmitterFiles) {
  EXPECT_FALSE(fired(check_fixture("float_format_fail.cpp", "src/x/f.cpp"),
                     "float-format"));
}

TEST(LintRules, FloatFormatPassesOnCanonicalG) {
  EXPECT_TRUE(
      check_fixture("float_format_pass.cpp", "src/obs/emit.cpp").empty());
}

TEST(LintRules, OrderedIterationFailsInEmitterFile) {
  const auto findings =
      check_fixture("ordered_iteration_fail.cpp", "src/obs/emit.cpp");
  ASSERT_TRUE(fired(findings, "ordered-iteration"));
  // The diagnostic points at the range-for line.
  const auto it = std::find_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.rule == "ordered-iteration"; });
  EXPECT_EQ(it->line, 8u);
}

TEST(LintRules, OrderedIterationPassesOnSortedMapAndJustifiedLoop) {
  EXPECT_TRUE(
      check_fixture("ordered_iteration_pass.cpp", "src/obs/emit.cpp").empty());
}

TEST(LintRules, UnitSuffixFailsOnSpelledOutUnits) {
  const auto findings = check_fixture("unit_suffix_fail.cpp", "src/x/f.cpp");
  EXPECT_TRUE(fired(findings, "unit-suffix"));
}

TEST(LintRules, UnitSuffixPassesOnCanonicalSuffixes) {
  EXPECT_TRUE(check_fixture("unit_suffix_pass.cpp", "src/x/f.cpp").empty());
}

TEST(LintRules, HeaderPragmaFailsOnIncludeGuard) {
  const auto findings =
      check_fixture("header_pragma_fail.hpp", "src/x/f.hpp");
  EXPECT_TRUE(fired(findings, "header-pragma"));
}

TEST(LintRules, HeaderPragmaPassesOnPragmaOnce) {
  EXPECT_TRUE(check_fixture("header_pragma_pass.hpp", "src/x/f.hpp").empty());
}

TEST(LintRules, HeaderPragmaIgnoredForCppFiles) {
  EXPECT_FALSE(fired(check_fixture("header_pragma_fail.hpp", "src/x/f.cpp"),
                     "header-pragma"));
}

TEST(LintStrip, CommentsAndStringsBecomeSpacesLinesSurvive) {
  const std::string stripped =
      strip_source("int a; // std::rand()\nconst char* s = \"time(0)\";\n",
                   /*strip_strings=*/true);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 2);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("time"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
}

TEST(LintStrip, RawStringsAreStripped) {
  const std::string stripped = strip_source(
      "auto s = R\"x(std::rand() inside)x\"; int b;", /*strip_strings=*/true);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(LintStrip, KeepStringsModePreservesFormatStrings) {
  const std::string stripped = strip_source(
      "printf(\"%.3f\\n\", x); // %.1f in comment", /*strip_strings=*/false);
  EXPECT_NE(stripped.find("%.3f"), std::string::npos);
  EXPECT_EQ(stripped.find("%.1f"), std::string::npos);
}

// The whole point: the shipped tree is lint-clean. Runs the identical scan
// the qntn_lint CLI runs, so CI failures reproduce locally byte for byte.
TEST(LintRepo, SourceTreeIsClean) {
  const std::vector<Finding> findings =
      qntn::lint::check_tree(QNTN_LINT_SOURCE_DIR);
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
  EXPECT_GT(qntn::lint::list_sources(QNTN_LINT_SOURCE_DIR).size(), 200u);
}

TEST(LintRules, EveryRuleHasNameMessageAndSuppressToken) {
  for (const qntn::lint::RuleSpec& rule : qntn::lint::rules()) {
    EXPECT_FALSE(rule.name.empty());
    EXPECT_FALSE(rule.message.empty());
    EXPECT_FALSE(rule.suppress.empty()) << rule.name;
  }
}

}  // namespace
