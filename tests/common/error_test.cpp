#include "common/error.hpp"

#include <gtest/gtest.h>

namespace qntn {
namespace {

TEST(Error, RequireMacroPassesOnTrue) {
  EXPECT_NO_THROW(QNTN_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Error, RequireMacroThrowsWithContext) {
  try {
    QNTN_REQUIRE(false, "helpful message");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("helpful message"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw NumericalError("x"), Error);
  EXPECT_THROW(throw PreconditionError("y"), Error);
  EXPECT_THROW(throw Error("z"), std::runtime_error);
}

}  // namespace
}  // namespace qntn
