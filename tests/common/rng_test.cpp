#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace qntn {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform_int(0, 1'000'000) != b.uniform_int(0, 1'000'000)) ++differences;
  }
  EXPECT_GT(differences, 40);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(0, 4);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformRealInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ForkProducesIndependentDeterministicStream) {
  Rng parent_a(99);
  Rng parent_b(99);
  Rng child_a = parent_a.fork();
  Rng child_b = parent_b.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child_a.uniform_int(0, 1 << 30), child_b.uniform_int(0, 1 << 30));
  }
}

}  // namespace
}  // namespace qntn
