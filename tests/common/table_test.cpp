#include "common/table.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "common/error.hpp"

namespace qntn {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table table("demo");
  table.set_header({"a", "b"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("333"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  Table table;
  table.set_header({"a", "b"});
  EXPECT_THROW((void)table.add_row({"only-one"}), PreconditionError);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(55.175, 2), "55.17");  // round-to-even in iostreams
  EXPECT_EQ(Table::num(1.0, 0), "1");
}

TEST(Table, CsvEscaping) {
  Table table;
  table.set_header({"name", "value"});
  table.add_row({"with,comma", "plain"});
  table.add_row({"with\"quote", "x"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, CsvRoundTripThroughFile) {
  Table table;
  table.set_header({"x"});
  table.add_row({"42"});
  const std::string path = ::testing::TempDir() + "/qntn_table_test.csv";
  table.write_csv(path);
  // Re-read via ifstream to confirm content made it to disk.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  std::getline(in, line);
  EXPECT_EQ(line, "42");
}

TEST(Table, WriteToUnwritablePathThrows) {
  Table table;
  table.set_header({"x"});
  EXPECT_THROW((void)table.write_csv("/nonexistent-dir/foo.csv"), Error);
}

}  // namespace
}  // namespace qntn
