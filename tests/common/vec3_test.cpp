#include "common/vec3.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"

namespace qntn {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-1.0, 0.5, 2.0};
  const Vec3 sum = a + b;
  EXPECT_DOUBLE_EQ(sum.x, 0.0);
  EXPECT_DOUBLE_EQ(sum.y, 2.5);
  EXPECT_DOUBLE_EQ(sum.z, 5.0);
  const Vec3 scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled.z, 6.0);
  const Vec3 neg = -a;
  EXPECT_DOUBLE_EQ(neg.x, -1.0);
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  const Vec3 z = x.cross(y);
  EXPECT_DOUBLE_EQ(z.z, 1.0);
  EXPECT_DOUBLE_EQ(z.x, 0.0);
  // Anti-commutativity.
  const Vec3 mz = y.cross(x);
  EXPECT_DOUBLE_EQ(mz.z, -1.0);
}

TEST(Vec3, NormAndNormalize) {
  const Vec3 v{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
  const Vec3 unit = v.normalized();
  EXPECT_NEAR(unit.norm(), 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(unit.x, 0.6);
  // The zero vector normalises to itself.
  const Vec3 zero{};
  EXPECT_DOUBLE_EQ(zero.normalized().norm(), 0.0);
}

TEST(Vec3, AngleBetween) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 2.0, 0.0};
  EXPECT_NEAR(angle_between(x, y), kPi / 2.0, 1e-15);
  EXPECT_NEAR(angle_between(x, x), 0.0, 1e-12);
  EXPECT_NEAR(angle_between(x, -1.0 * x), kPi, 1e-12);
  // Stability for nearly parallel vectors.
  const Vec3 nearly{1.0, 1e-9, 0.0};
  EXPECT_NEAR(angle_between(x, nearly), 1e-9, 1e-12);
}

TEST(Vec3, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {3, 4, 0}), 5.0);
}

}  // namespace
}  // namespace qntn
