#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qntn {
namespace {

TEST(RunningStats, EmptyAccumulator) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, / 7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats stats;
  stats.add(42.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats all, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i < 200 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(3.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, MergeIsAssociativeOverRandomPartitions) {
  // Property test: for random data split into random chunks, any merge
  // parenthesisation must agree with sequential accumulation. The obs
  // registry relies on this when folding per-thread shards in any order.
  Rng rng(20240806);
  for (int trial = 0; trial < 25; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 400));
    std::vector<double> data;
    data.reserve(n);
    RunningStats sequential;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = rng.normal(-1.0, 5.0);
      data.push_back(x);
      sequential.add(x);
    }
    // Random partition into up to 5 chunks.
    std::vector<RunningStats> chunks(
        static_cast<std::size_t>(rng.uniform_int(1, 5)));
    for (const double x : data) {
      chunks[static_cast<std::size_t>(rng.uniform_int(
                 0, static_cast<std::int64_t>(chunks.size()) - 1))]
          .add(x);
    }
    // Left fold ((a + b) + c) ... and right fold a + (b + (c ...)).
    RunningStats left_fold = chunks.front();
    for (std::size_t i = 1; i < chunks.size(); ++i) {
      left_fold.merge(chunks[i]);
    }
    RunningStats right_fold = chunks.back();
    for (std::size_t i = chunks.size() - 1; i-- > 0;) {
      RunningStats acc = chunks[i];
      acc.merge(right_fold);
      right_fold = acc;
    }
    for (const RunningStats& folded : {left_fold, right_fold}) {
      EXPECT_EQ(folded.count(), sequential.count());
      EXPECT_NEAR(folded.mean(), sequential.mean(), 1e-9);
      EXPECT_NEAR(folded.variance(), sequential.variance(), 1e-7);
      EXPECT_DOUBLE_EQ(folded.min(), sequential.min());
      EXPECT_DOUBLE_EQ(folded.max(), sequential.max());
    }
  }
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> values{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(values, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(values, 0.5), 25.0);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 0.5), 3.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW((void)percentile({}, 0.5), PreconditionError);
  EXPECT_THROW((void)percentile({1.0}, 1.5), PreconditionError);
}

}  // namespace
}  // namespace qntn
