#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace qntn {
namespace {

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.bin_count(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 0.75);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 1.0);
  EXPECT_THROW((void)h.bin_low(4), PreconditionError);
}

TEST(Histogram, CountsLandInTheRightBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.3);
  h.add(0.3);
  h.add(0.99);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
}

TEST(Histogram, OutOfRangeSaturatesEdgeBins) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(7.0);
  h.add(1.0);  // hi boundary goes to the top bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
}

TEST(Histogram, QuantileInterpolation) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  // Uniform over bins: median near 5.
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.51);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1e-12);
  EXPECT_LE(h.quantile(1.0), 10.0);
  EXPECT_THROW((void)h.quantile(1.5), PreconditionError);
}

TEST(Histogram, QuantileMatchesExactPercentileOnGaussian) {
  Rng rng(3);
  Histogram h(-5.0, 5.0, 200);
  std::vector<double> values;
  for (int i = 0; i < 20'000; ++i) {
    const double v = rng.normal(0.0, 1.0);
    h.add(v);
    values.push_back(v);
  }
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(h.quantile(q), percentile(values, q), 0.06) << q;
  }
}

TEST(Histogram, EmptyQuantileThrows) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW((void)h.quantile(0.5), PreconditionError);
  EXPECT_THROW((void)h.quantile(0.0), PreconditionError);
  EXPECT_THROW((void)h.quantile(1.0), PreconditionError);
}

TEST(Histogram, SingleSampleQuantiles) {
  Histogram h(0.0, 10.0, 10);
  h.add(3.5);  // bin 3 = [3, 4)
  // Every quantile of a one-sample histogram interpolates inside its bin.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(Histogram, ExtremeQuantilesSkipEmptyEdgeBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(4.5);  // bin 4
  h.add(6.5);  // bin 6
  // p0 must land on the first occupied bin, not the histogram's lower
  // edge, and p100 on the end of the last occupied bin, not hi.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.0);
}

TEST(Histogram, DuplicateHeavyDistribution) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 999; ++i) h.add(0.55);  // bin 5
  h.add(0.95);                                // bin 9
  // Nearly all mass sits in one bin: every central quantile interpolates
  // inside it, and only the very top reaches the outlier's bin.
  EXPECT_GE(h.quantile(0.01), 0.5);
  EXPECT_LE(h.quantile(0.5), 0.6);
  EXPECT_LE(h.quantile(0.99), 0.6);
  EXPECT_GT(h.quantile(0.9995), 0.9);
  EXPECT_LE(h.quantile(1.0), 1.0);
}

TEST(Histogram, QuantileMonotoneInQ) {
  Histogram h(0.0, 1.0, 8);
  Rng rng(11);
  for (int i = 0; i < 500; ++i) h.add(rng.uniform(0.0, 1.0));
  double previous = h.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double value = h.quantile(q);
    EXPECT_GE(value, previous) << q;
    previous = value;
  }
}

TEST(Histogram, AsciiRenderingShowsNonEmptyBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.1);
  const std::string text = h.to_string();
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find("[0, 0.25)"), std::string::npos);
  // Empty bins are omitted.
  EXPECT_EQ(text.find("[0.5, 0.75)"), std::string::npos);
}

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

}  // namespace
}  // namespace qntn
