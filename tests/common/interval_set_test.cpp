#include "common/interval_set.hpp"

#include <gtest/gtest.h>

namespace qntn {
namespace {

TEST(IntervalSet, EmptyByDefault) {
  IntervalSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_DOUBLE_EQ(set.total(), 0.0);
  EXPECT_EQ(set.episode_count(), 0u);
}

TEST(IntervalSet, SingleInterval) {
  IntervalSet set;
  set.add_interval(10.0, 40.0);
  EXPECT_DOUBLE_EQ(set.total(), 30.0);
  EXPECT_EQ(set.episode_count(), 1u);
}

TEST(IntervalSet, DegenerateIntervalIgnored) {
  IntervalSet set;
  set.add_interval(5.0, 5.0);
  set.add_interval(7.0, 6.0);
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, AbuttingSamplesMergeIntoOneEpisode) {
  IntervalSet set;
  // Three consecutive 30 s active samples = one 90 s episode (Eq. 6 has
  // one t_start/t_end pair here).
  set.add_sample(0.0, 30.0, true);
  set.add_sample(30.0, 30.0, true);
  set.add_sample(60.0, 30.0, true);
  EXPECT_DOUBLE_EQ(set.total(), 90.0);
  EXPECT_EQ(set.episode_count(), 1u);
}

TEST(IntervalSet, InactiveSamplesSplitEpisodes) {
  IntervalSet set;
  set.add_sample(0.0, 30.0, true);
  set.add_sample(30.0, 30.0, false);
  set.add_sample(60.0, 30.0, true);
  EXPECT_DOUBLE_EQ(set.total(), 60.0);
  EXPECT_EQ(set.episode_count(), 2u);
  const auto merged = set.merged();
  EXPECT_DOUBLE_EQ(merged[0].start, 0.0);
  EXPECT_DOUBLE_EQ(merged[0].end, 30.0);
  EXPECT_DOUBLE_EQ(merged[1].start, 60.0);
  EXPECT_DOUBLE_EQ(merged[1].end, 90.0);
}

TEST(IntervalSet, OverlappingIntervalsMerge) {
  IntervalSet set;
  set.add_interval(0.0, 50.0);
  set.add_interval(40.0, 80.0);
  set.add_interval(200.0, 210.0);
  EXPECT_DOUBLE_EQ(set.total(), 90.0);
  EXPECT_EQ(set.episode_count(), 2u);
}

TEST(IntervalSet, OutOfOrderInsertionStillMerges) {
  IntervalSet set;
  set.add_interval(100.0, 130.0);
  set.add_interval(0.0, 30.0);
  set.add_interval(20.0, 110.0);
  EXPECT_DOUBLE_EQ(set.total(), 130.0);
  EXPECT_EQ(set.episode_count(), 1u);
}

TEST(IntervalSet, ContainedIntervalDoesNotDoubleCount) {
  IntervalSet set;
  set.add_interval(0.0, 100.0);
  set.add_interval(20.0, 30.0);
  EXPECT_DOUBLE_EQ(set.total(), 100.0);
}

}  // namespace
}  // namespace qntn
