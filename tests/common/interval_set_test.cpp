#include "common/interval_set.hpp"

#include <gtest/gtest.h>

namespace qntn {
namespace {

TEST(IntervalSet, EmptyByDefault) {
  IntervalSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_DOUBLE_EQ(set.total(), 0.0);
  EXPECT_EQ(set.episode_count(), 0u);
}

TEST(IntervalSet, SingleInterval) {
  IntervalSet set;
  set.add_interval(10.0, 40.0);
  EXPECT_DOUBLE_EQ(set.total(), 30.0);
  EXPECT_EQ(set.episode_count(), 1u);
}

TEST(IntervalSet, DegenerateIntervalIgnored) {
  IntervalSet set;
  set.add_interval(5.0, 5.0);
  set.add_interval(7.0, 6.0);
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, AbuttingSamplesMergeIntoOneEpisode) {
  IntervalSet set;
  // Three consecutive 30 s active samples = one 90 s episode (Eq. 6 has
  // one t_start/t_end pair here).
  set.add_sample(0.0, 30.0, true);
  set.add_sample(30.0, 30.0, true);
  set.add_sample(60.0, 30.0, true);
  EXPECT_DOUBLE_EQ(set.total(), 90.0);
  EXPECT_EQ(set.episode_count(), 1u);
}

TEST(IntervalSet, InactiveSamplesSplitEpisodes) {
  IntervalSet set;
  set.add_sample(0.0, 30.0, true);
  set.add_sample(30.0, 30.0, false);
  set.add_sample(60.0, 30.0, true);
  EXPECT_DOUBLE_EQ(set.total(), 60.0);
  EXPECT_EQ(set.episode_count(), 2u);
  const auto merged = set.merged();
  EXPECT_DOUBLE_EQ(merged[0].start, 0.0);
  EXPECT_DOUBLE_EQ(merged[0].end, 30.0);
  EXPECT_DOUBLE_EQ(merged[1].start, 60.0);
  EXPECT_DOUBLE_EQ(merged[1].end, 90.0);
}

TEST(IntervalSet, OverlappingIntervalsMerge) {
  IntervalSet set;
  set.add_interval(0.0, 50.0);
  set.add_interval(40.0, 80.0);
  set.add_interval(200.0, 210.0);
  EXPECT_DOUBLE_EQ(set.total(), 90.0);
  EXPECT_EQ(set.episode_count(), 2u);
}

TEST(IntervalSet, OutOfOrderInsertionStillMerges) {
  IntervalSet set;
  set.add_interval(100.0, 130.0);
  set.add_interval(0.0, 30.0);
  set.add_interval(20.0, 110.0);
  EXPECT_DOUBLE_EQ(set.total(), 130.0);
  EXPECT_EQ(set.episode_count(), 1u);
}

TEST(IntervalSet, ContainedIntervalDoesNotDoubleCount) {
  IntervalSet set;
  set.add_interval(0.0, 100.0);
  set.add_interval(20.0, 30.0);
  EXPECT_DOUBLE_EQ(set.total(), 100.0);
}

TEST(IntervalSet, DaySplitAtBoundaryMergesSeamlessly) {
  // Coverage accumulated in two half-day batches meeting exactly at noon
  // must report one episode over the full day — no phantom boundary at the
  // split point (contact windows are clipped to [0, 86400] the same way).
  IntervalSet set;
  set.add_interval(0.0, 43'200.0);
  set.add_interval(43'200.0, 86'400.0);
  EXPECT_DOUBLE_EQ(set.total(), 86'400.0);
  EXPECT_EQ(set.episode_count(), 1u);
  const auto merged = set.merged();
  EXPECT_DOUBLE_EQ(merged[0].start, 0.0);
  EXPECT_DOUBLE_EQ(merged[0].end, 86'400.0);
}

TEST(IntervalSet, FinalSampleOfTheDayCoversUpToDuration) {
  IntervalSet set;
  set.add_sample(86'370.0, 30.0, true);
  const auto merged = set.merged();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_DOUBLE_EQ(merged[0].start, 86'370.0);
  EXPECT_DOUBLE_EQ(merged[0].end, 86'400.0);
}

TEST(IntersectMerged, BasicOverlap) {
  const std::vector<Interval> a = {{0.0, 50.0}, {100.0, 150.0}};
  const std::vector<Interval> b = {{40.0, 120.0}};
  const auto out = intersect_merged(a, b);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].start, 40.0);
  EXPECT_DOUBLE_EQ(out[0].end, 50.0);
  EXPECT_DOUBLE_EQ(out[1].start, 100.0);
  EXPECT_DOUBLE_EQ(out[1].end, 120.0);
}

TEST(IntersectMerged, DisjointAndTouchingProduceNothing) {
  const std::vector<Interval> a = {{0.0, 10.0}};
  EXPECT_TRUE(intersect_merged(a, {{20.0, 30.0}}).empty());
  // Half-open intervals: touching at one point shares no time.
  EXPECT_TRUE(intersect_merged(a, {{10.0, 30.0}}).empty());
  EXPECT_TRUE(intersect_merged(a, {}).empty());
  EXPECT_TRUE(intersect_merged({}, a).empty());
}

TEST(IntersectMerged, NestedAndMultiInterval) {
  const std::vector<Interval> a = {{0.0, 100.0}};
  const std::vector<Interval> b = {{10.0, 20.0}, {30.0, 40.0}, {90.0, 120.0}};
  const auto out = intersect_merged(a, b);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (Interval{10.0, 20.0}));
  EXPECT_EQ(out[1], (Interval{30.0, 40.0}));
  EXPECT_EQ(out[2], (Interval{90.0, 100.0}));
}

TEST(IntersectMerged, IsCommutative) {
  const std::vector<Interval> a = {{0.0, 35.0}, {50.0, 80.0}, {85.0, 90.0}};
  const std::vector<Interval> b = {{30.0, 55.0}, {79.0, 86.0}};
  EXPECT_EQ(intersect_merged(a, b), intersect_merged(b, a));
}

}  // namespace
}  // namespace qntn
