#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace qntn {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<int> hits(kN, 0);
  parallel_for_index(pool, kN, [&hits](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), static_cast<int>(kN));
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForDeterministicResultAnyThreadCount) {
  // Each index writes a pure function of itself; results must not depend on
  // the number of workers.
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(257);
    parallel_for_index(pool, out.size(), [&out](std::size_t i) {
      out[i] = static_cast<double>(i * i) * 0.5;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(7));
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_index(pool, 0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ThreadLabelsNameMainAndWorkers) {
  EXPECT_EQ(thread_label(), "main");
  ThreadPool pool(3);
  std::mutex mutex;
  std::set<std::string> labels;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&] {
      const std::lock_guard<std::mutex> lock(mutex);
      labels.insert(thread_label());
    }));
  }
  for (auto& f : futures) f.get();
  // Every observed label is a worker's; with 32 tasks on 3 workers each
  // label almost surely appears, but only the format is guaranteed.
  EXPECT_FALSE(labels.empty());
  for (const std::string& label : labels) {
    EXPECT_EQ(label.rfind("worker-", 0), 0u) << label;
  }
}

TEST(ThreadPool, SetThreadLabelOverrides) {
  const std::string before = thread_label();
  set_thread_label("custom");
  EXPECT_EQ(thread_label(), "custom");
  set_thread_label(before);
  EXPECT_EQ(thread_label(), before);
}

TEST(ThreadPool, ParallelForRethrowsTaskFailure) {
  ThreadPool pool(2);
  EXPECT_THROW((void)parallel_for_index(pool, 8,
                                  [](std::size_t i) {
                                    if (i == 3) throw std::runtime_error("bad");
                                  }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForChunksCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{100}}) {
    for (const std::size_t chunks : {std::size_t{1}, std::size_t{3},
                                     std::size_t{8}, std::size_t{200}}) {
      std::vector<std::atomic<int>> hits(count);
      parallel_for_chunks(pool, count, chunks,
                          [&](std::size_t begin, std::size_t end) {
                            ASSERT_LE(begin, end);
                            for (std::size_t i = begin; i < end; ++i) {
                              ++hits[i];
                            }
                          });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "count=" << count
                                     << " chunks=" << chunks << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, ParallelForChunksUsesContiguousRanges) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  parallel_for_chunks(pool, 100, 4, [&](std::size_t begin, std::size_t end) {
    const std::lock_guard lock(mutex);
    ranges.emplace_back(begin, end);
  });
  // The fan-out is capped at the hardware thread count, so the exact chunk
  // count is host-dependent; coverage and contiguity are not.
  const std::size_t expected_chunks = std::min<std::size_t>(
      4, std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  ASSERT_EQ(ranges.size(), expected_chunks);
  std::sort(ranges.begin(), ranges.end());
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GT(end, begin);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 100u);
}

TEST(ThreadPool, ParallelForChunksPropagatesExceptions) {
  ThreadPool pool(2);
  // Throw from whichever chunk owns index 5, so the test holds under any
  // hardware-dependent chunk cap.
  EXPECT_THROW(parallel_for_chunks(pool, 10, 4,
                                   [](std::size_t begin, std::size_t end) {
                                     if (begin <= 5 && 5 < end) {
                                       throw std::runtime_error("boom");
                                     }
                                   }),
               std::runtime_error);
}

}  // namespace
}  // namespace qntn
