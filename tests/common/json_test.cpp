#include "common/json.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"

namespace qntn {
namespace {

using json::Value;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Value::parse("null").is_null());
  EXPECT_TRUE(Value::parse("true").as_bool());
  EXPECT_FALSE(Value::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Value::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Value::parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(Value::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedContainers) {
  const Value root = Value::parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
  ASSERT_TRUE(root.is_object());
  const Value& a = root.at("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.items().size(), 3u);
  EXPECT_DOUBLE_EQ(a.items()[0].as_number(), 1.0);
  EXPECT_TRUE(a.items()[2].at("b").as_bool());
  EXPECT_TRUE(root.at("c").at("d").is_null());
  EXPECT_EQ(root.at("e").as_string(), "x");
}

TEST(Json, ObjectPreservesMemberOrder) {
  const Value root = Value::parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(root.members().size(), 3u);
  EXPECT_EQ(root.members()[0].first, "z");
  EXPECT_EQ(root.members()[1].first, "a");
  EXPECT_EQ(root.members()[2].first, "m");
}

TEST(Json, StringEscapes) {
  const Value v = Value::parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, WhitespaceTolerantButRejectsTrailingGarbage) {
  EXPECT_DOUBLE_EQ(Value::parse("  \n\t 7  \n").as_number(), 7.0);
  EXPECT_THROW((void)Value::parse("7 x"), Error);
  EXPECT_THROW((void)Value::parse("{} []"), Error);
}

TEST(Json, MalformedDocumentsThrowWithOffset) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\" 1}", "{\"a\": }", "tru", "\"unterminated",
        "[1 2]", "{1: 2}", "nan"}) {
    EXPECT_THROW((void)Value::parse(bad), Error) << bad;
  }
  try {
    (void)Value::parse("[1, ]");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    // The message carries a byte offset for debugging.
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos)
        << e.what();
  }
}

TEST(Json, FindAndAt) {
  const Value root = Value::parse(R"({"x": 1})");
  ASSERT_NE(root.find("x"), nullptr);
  EXPECT_EQ(root.find("missing"), nullptr);
  EXPECT_THROW((void)root.at("missing"), Error);
  // find on a non-object is a nullptr, not a throw.
  EXPECT_EQ(Value::parse("[]").find("x"), nullptr);
}

TEST(Json, TypeMismatchThrows) {
  const Value v = Value::parse("42");
  EXPECT_THROW((void)v.as_string(), Error);
  EXPECT_THROW((void)v.as_bool(), Error);
  EXPECT_THROW((void)v.items(), Error);
  EXPECT_THROW((void)v.members(), Error);
}

TEST(Json, RoundTripsRepoEmittedMetricsShape) {
  // The shape obs::MetricsSnapshot::to_json and BENCH_*.json emit: nested
  // objects, arrays of numbers, scientific notation.
  const Value root = Value::parse(R"({
    "schema": "qntn-bench-v1",
    "cases": [
      {"name": "a", "repeats_ms": [1.25, 2.5e-2, 3], "median_ms": 1.25}
    ]
  })");
  const Value& c = root.at("cases").items().front();
  EXPECT_EQ(c.at("name").as_string(), "a");
  EXPECT_DOUBLE_EQ(c.at("repeats_ms").items()[1].as_number(), 0.025);
}

}  // namespace
}  // namespace qntn
