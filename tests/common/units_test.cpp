#include "common/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"

namespace qntn {
namespace {

TEST(Units, DegreeRadianRoundTrip) {
  EXPECT_DOUBLE_EQ(deg_to_rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad_to_deg(kPi / 2.0), 90.0);
  for (double deg = -720.0; deg <= 720.0; deg += 37.5) {
    EXPECT_NEAR(rad_to_deg(deg_to_rad(deg)), deg, 1e-12);
  }
}

TEST(Units, LengthConversions) {
  EXPECT_DOUBLE_EQ(km_to_m(1.5), 1500.0);
  EXPECT_DOUBLE_EQ(m_to_km(250.0), 0.25);
  EXPECT_DOUBLE_EQ(minutes_to_s(2.0), 120.0);
  EXPECT_DOUBLE_EQ(s_to_minutes(90.0), 1.5);
}

TEST(Units, FiberAttenuationConversionMatchesDecibelDefinition) {
  // 0.15 dB/km over 10 km is 1.5 dB total: eta = 10^(-0.15).
  const double alpha = db_per_km_to_neper_per_m(0.15);
  const double eta = std::exp(-alpha * 10'000.0);
  EXPECT_NEAR(eta, std::pow(10.0, -1.5 / 10.0), 1e-12);
}

TEST(Units, DecibelRoundTrip) {
  for (double ratio : {1.0, 0.5, 0.1, 0.01, 2.0}) {
    EXPECT_NEAR(db_to_ratio(ratio_to_db(ratio)), ratio, 1e-12);
  }
  EXPECT_DOUBLE_EQ(ratio_to_db(1.0), 0.0);
  EXPECT_NEAR(ratio_to_db(0.5), -3.0103, 1e-4);
}

TEST(Units, WrapTwoPiIntoRange) {
  EXPECT_NEAR(wrap_two_pi(kTwoPi + 0.25), 0.25, 1e-12);
  EXPECT_NEAR(wrap_two_pi(-0.25), kTwoPi - 0.25, 1e-12);
  EXPECT_NEAR(wrap_two_pi(5.0 * kTwoPi), 0.0, 1e-9);
  for (double a = -20.0; a <= 20.0; a += 0.77) {
    const double w = wrap_two_pi(a);
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, kTwoPi);
    EXPECT_NEAR(std::remainder(w - a, kTwoPi), 0.0, 1e-9);
  }
}

TEST(Units, WrapPiIntoRange) {
  EXPECT_NEAR(wrap_pi(kPi + 0.5), -kPi + 0.5, 1e-12);
  for (double a = -20.0; a <= 20.0; a += 0.77) {
    const double w = wrap_pi(a);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
  }
}

}  // namespace
}  // namespace qntn
