#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "geo/sun.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/scenario.hpp"
#include "sim/traffic.hpp"

/// The open-arrival traffic serving mode of run_scenario (DESIGN.md §12):
/// determinism across thread counts (the PR 4 golden contract extended to
/// event windows), the six-bucket accounting identity, backpressure and
/// deadline behaviour under saturation, and the diurnal arrival profile.

namespace qntn::sim {
namespace {

using core::QntnConfig;
using core::TopologyMode;

/// Four hours, ten 1440-s serving windows, light per-LAN arrivals — a few
/// hundred events, seconds of wall clock.
ScenarioConfig quick_traffic_config(const QntnConfig& config) {
  ScenarioConfig sc = config.scenario_config();
  sc.coverage.duration = 14'400.0;
  sc.coverage.step = 120.0;
  sc.request_count = 30;
  sc.request_steps = 10;
  sc.request_step_interval = 1440.0;
  sc.traffic.arrival_rate = 0.02;
  return sc;
}

struct RunOutput {
  ScenarioResult result;
  std::string trace;
};

RunOutput run_traffic_with(TopologyMode mode, ThreadPool* pool,
                           obs::Registry* registry = nullptr) {
  QntnConfig config;
  config.serving_mode = core::ServingMode::Traffic;
  config.topology_mode = mode;
  const NetworkModel model = core::build_space_ground_model(config, 12);
  const core::Topology topology = core::make_topology(config, model);
  RunOutput out;
  std::ostringstream trace_stream;
  obs::TraceSink trace(trace_stream, obs::TraceLevel::Requests);
  ScenarioConfig sc = quick_traffic_config(config);
  sc.pool = pool;
  sc.trace = &trace;
  sc.registry = registry;
  out.result = run_scenario(model, topology.provider(), sc);
  out.trace = trace_stream.str();
  return out;
}

void expect_same_stats(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  if (a.count() == 0 || b.count() == 0) return;
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.stddev(), b.stddev());
}

void expect_identical(const RunOutput& a, const RunOutput& b) {
  EXPECT_EQ(a.result.served_fraction, b.result.served_fraction);
  expect_same_stats(a.result.fidelity, b.result.fidelity);
  expect_same_stats(a.result.transmissivity, b.result.transmissivity);
  expect_same_stats(a.result.hops, b.result.hops);
  EXPECT_EQ(a.result.requests_issued, b.result.requests_issued);
  EXPECT_EQ(a.result.requests_served, b.result.requests_served);
  EXPECT_EQ(a.result.requests_no_path, b.result.requests_no_path);
  EXPECT_EQ(a.result.requests_isolated, b.result.requests_isolated);
  EXPECT_EQ(a.result.requests_rejected_capacity,
            b.result.requests_rejected_capacity);
  EXPECT_EQ(a.result.requests_dropped_deadline,
            b.result.requests_dropped_deadline);
  expect_same_stats(a.result.traffic.latency, b.result.traffic.latency);
  expect_same_stats(a.result.traffic.waiting, b.result.traffic.waiting);
  expect_same_stats(a.result.traffic.peak_utilisation,
                    b.result.traffic.peak_utilisation);
  EXPECT_EQ(a.result.traffic.peak_queue_depth,
            b.result.traffic.peak_queue_depth);
  EXPECT_EQ(a.result.traffic.latency_samples,
            b.result.traffic.latency_samples);
  EXPECT_EQ(a.result.traffic.waiting_samples,
            b.result.traffic.waiting_samples);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(TrafficScenario, BitIdenticalAcrossThreadCountsContactPlan) {
  const RunOutput serial = run_traffic_with(TopologyMode::ContactPlan, nullptr);
  EXPECT_FALSE(serial.trace.empty());
  EXPECT_GT(serial.result.requests_issued, 100u);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    const RunOutput parallel =
        run_traffic_with(TopologyMode::ContactPlan, &pool);
    expect_identical(serial, parallel);
  }
}

TEST(TrafficScenario, BitIdenticalAcrossThreadCountsRebuild) {
  // Unlike the fixed-batch engines, traffic windows chunk on the rebuild
  // provider too (no epoch partition needed), and must stay bit-identical.
  const RunOutput serial = run_traffic_with(TopologyMode::Rebuild, nullptr);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    const RunOutput parallel = run_traffic_with(TopologyMode::Rebuild, &pool);
    expect_identical(serial, parallel);
  }
}

TEST(TrafficScenario, AccountingReconcilesAndCountersMatch) {
  obs::Registry registry;
  const RunOutput out = run_traffic_with(TopologyMode::ContactPlan, nullptr,
                                         &registry);
  const ScenarioResult& r = out.result;
  ASSERT_GT(r.requests_issued, 0u);
  EXPECT_EQ(r.requests_served + r.requests_no_path + r.requests_isolated +
                r.requests_congested + r.requests_rejected_capacity +
                r.requests_dropped_deadline,
            r.requests_issued);
  // Open arrivals have no cross-step identity: no handovers, no em stats.
  EXPECT_EQ(r.handovers, 0u);
  EXPECT_EQ(r.requests_congested, 0u);
  EXPECT_FALSE(r.em.enabled);
  ASSERT_TRUE(r.traffic.enabled);
  EXPECT_EQ(r.traffic.latency_samples.size(), r.requests_served);
  EXPECT_EQ(r.traffic.waiting_samples.size(), r.requests_served);
  EXPECT_EQ(registry.counter("scenario.requests_issued"), r.requests_issued);
  EXPECT_EQ(registry.counter("scenario.requests_served"), r.requests_served);
  EXPECT_EQ(registry.counter("scenario.requests_rejected_capacity"),
            r.requests_rejected_capacity);
  EXPECT_EQ(registry.counter("scenario.requests_dropped_deadline"),
            r.requests_dropped_deadline);
  EXPECT_EQ(registry.counter("scenario.snapshots"), 10u);
}

TEST(TrafficScenario, SaturationTriggersBackpressureAndDeadlines) {
  QntnConfig config;
  config.serving_mode = core::ServingMode::Traffic;
  // The air-ground network keeps the HAP on every inter-LAN route, so one
  // concurrent pair per node, long services, and a tiny queue and deadline
  // mean nearly every arrival beyond the first must wait, bounce or expire.
  config.traffic_node_capacity = 1;
  config.traffic_service_overhead = 30.0;
  config.traffic_max_queue_delay = 1.0;
  config.traffic_max_backlog = 4;
  const NetworkModel model = core::build_air_ground_model(config);
  const core::Topology topology = core::make_topology(config, model);
  ScenarioConfig sc = quick_traffic_config(config);
  sc.traffic.arrival_rate = 0.2;
  const ScenarioResult r = run_scenario(model, topology.provider(), sc);
  ASSERT_GT(r.requests_issued, 0u);
  ASSERT_GT(r.requests_served, 0u);
  EXPECT_GT(r.requests_dropped_deadline, 0u);
  EXPECT_GT(r.requests_rejected_capacity, 0u);
  EXPECT_LT(r.requests_served, r.requests_issued);
  EXPECT_GT(r.traffic.peak_queue_depth, 0u);
  EXPECT_EQ(r.requests_served + r.requests_no_path + r.requests_isolated +
                r.requests_congested + r.requests_rejected_capacity +
                r.requests_dropped_deadline,
            r.requests_issued);
}

TEST(TrafficScenario, SingleShotModeCarriesNoTrafficState) {
  // The engine refactor must leave the paper's single-shot results without
  // any traffic accounting: disabled summary, zero traffic-only buckets.
  QntnConfig config;
  const NetworkModel model = core::build_space_ground_model(config, 12);
  const core::Topology topology = core::make_topology(config, model);
  ScenarioConfig sc = config.scenario_config();
  sc.coverage.duration = 14'400.0;
  sc.coverage.step = 120.0;
  sc.request_count = 30;
  sc.request_steps = 10;
  sc.request_step_interval = 1440.0;
  const ScenarioResult r = run_scenario(model, topology.provider(), sc);
  EXPECT_FALSE(r.traffic.enabled);
  EXPECT_EQ(r.requests_rejected_capacity, 0u);
  EXPECT_EQ(r.requests_dropped_deadline, 0u);
  EXPECT_EQ(r.traffic.latency_samples.size(), 0u);
  EXPECT_EQ(r.requests_issued, 300u);  // 30 requests x 10 snapshots
}

TEST(TrafficEngine, FullAmplitudeSilencesNightWindows) {
  // At diurnal_amplitude = 1 a night-time LAN arrives at rate 0. The three
  // Tennessee LANs share a longitude band, so a night window issues nothing
  // while a daytime window at the same rate stays busy.
  QntnConfig config;
  config.serving_mode = core::ServingMode::Traffic;
  const NetworkModel model = core::build_space_ground_model(config, 12);
  const core::Topology topology = core::make_topology(config, model);
  TrafficConfig tc = config.traffic_options();
  tc.arrival_rate = 0.05;
  tc.diurnal_amplitude = 1.0;
  const geo::SunModel sun = tc.sun;
  const geo::Geodetic site = model.node(model.lan_nodes(0).front()).position;
  double t_day = -1.0;
  double t_night = -1.0;
  for (double t = 0.0; t < 86'400.0; t += 1800.0) {
    if (sun.solar_elevation(site, t) > 0.0) {
      if (t_day < 0.0) t_day = t;
    } else if (t_night < 0.0) {
      t_night = t;
    }
  }
  ASSERT_GE(t_day, 0.0);
  ASSERT_GE(t_night, 0.0);
  TrafficEngine engine(model, topology.provider(), tc, 1440.0, false);
  const ServeStepResult day = engine.serve_step(0, t_day);
  const ServeStepResult night = engine.serve_step(1, t_night);
  EXPECT_GT(day.outcome.issued, 0u);
  EXPECT_EQ(night.outcome.issued, 0u);
}

TEST(TrafficConfigValidate, RejectsDegenerateParameters) {
  TrafficConfig good;
  good.validate();  // defaults are fine
  TrafficConfig bad = good;
  bad.max_queue_delay = 0.0;
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = good;
  bad.arrival_rate = -1.0;
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = good;
  bad.diurnal_amplitude = 1.5;
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = good;
  bad.max_backlog = 0;
  EXPECT_THROW(bad.validate(), PreconditionError);
}

}  // namespace
}  // namespace qntn::sim
