#include "sim/requests.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"

namespace qntn::sim {
namespace {

using core::QntnConfig;

TEST(Requests, EndpointsAlwaysInDistinctLans) {
  const QntnConfig config;
  const NetworkModel model = core::build_ground_model(config);
  Rng rng(4);
  const auto requests = generate_requests(model, 500, rng);
  ASSERT_EQ(requests.size(), 500u);
  for (const Request& req : requests) {
    const Node& src = model.node(req.source);
    const Node& dst = model.node(req.destination);
    EXPECT_EQ(src.kind, NodeKind::Ground);
    EXPECT_EQ(dst.kind, NodeKind::Ground);
    EXPECT_NE(src.lan, dst.lan);
  }
}

TEST(Requests, DeterministicForFixedSeed) {
  const QntnConfig config;
  const NetworkModel model = core::build_ground_model(config);
  Rng a(7), b(7);
  const auto ra = generate_requests(model, 50, a);
  const auto rb = generate_requests(model, 50, b);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].source, rb[i].source);
    EXPECT_EQ(ra[i].destination, rb[i].destination);
  }
}

TEST(Requests, AllLanPairsEventuallySampled) {
  const QntnConfig config;
  const NetworkModel model = core::build_ground_model(config);
  Rng rng(11);
  const auto requests = generate_requests(model, 300, rng);
  bool pair01 = false, pair02 = false, pair12 = false;
  for (const Request& req : requests) {
    const std::size_t a = model.node(req.source).lan;
    const std::size_t b = model.node(req.destination).lan;
    if ((a == 0 && b == 1) || (a == 1 && b == 0)) pair01 = true;
    if ((a == 0 && b == 2) || (a == 2 && b == 0)) pair02 = true;
    if ((a == 1 && b == 2) || (a == 2 && b == 1)) pair12 = true;
  }
  EXPECT_TRUE(pair01);
  EXPECT_TRUE(pair02);
  EXPECT_TRUE(pair12);
}

TEST(Requests, RequiresTwoLans) {
  const QntnConfig config;
  NetworkModel model;
  model.add_lan("only", {geo::Geodetic::from_degrees(36.0, -85.0, 0.0)},
                config.ground_terminal());
  Rng rng(1);
  EXPECT_THROW((void)generate_requests(model, 10, rng), PreconditionError);
}

TEST(Serve, DisconnectedGraphServesNothing) {
  const QntnConfig config;
  const NetworkModel model = core::build_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  Rng rng(3);
  const auto requests = generate_requests(model, 40, rng);
  const ServeResult result = serve_requests(topology.graph_at(0.0), requests);
  EXPECT_EQ(result.total, 40u);
  EXPECT_EQ(result.served, 0u);
  EXPECT_DOUBLE_EQ(result.served_fraction(), 0.0);
  EXPECT_EQ(result.fidelity.count(), 0u);
}

TEST(Serve, AirGroundServesEverythingWithHighFidelity) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  Rng rng(5);
  const auto requests = generate_requests(model, 60, rng);
  const ServeResult result = serve_requests(topology.graph_at(0.0), requests);
  EXPECT_EQ(result.served, 60u);
  EXPECT_DOUBLE_EQ(result.served_fraction(), 1.0);
  // All QNTN air-ground routes relay through the HAP: >= 2 FSO hops.
  EXPECT_GE(result.hops.min(), 2.0);
  EXPECT_GT(result.fidelity.mean(), 0.9);
  EXPECT_LE(result.fidelity.max(), 1.0);
  // Fidelity follows the closed form of the recorded transmissivity.
  EXPECT_NEAR(result.fidelity.max(),
              quantum::bell_fidelity_after_damping(
                  result.transmissivity.max(),
                  quantum::FidelityConvention::Uhlmann),
              1e-12);
}

TEST(Serve, EmptyRequestListIsHarmless) {
  const QntnConfig config;
  const NetworkModel model = core::build_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const ServeResult result = serve_requests(topology.graph_at(0.0), {});
  EXPECT_EQ(result.total, 0u);
  EXPECT_DOUBLE_EQ(result.served_fraction(), 0.0);
}

TEST(Serve, JozsaConventionLowersReportedFidelity) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  Rng rng(5);
  const auto requests = generate_requests(model, 30, rng);
  const net::Graph graph = topology.graph_at(0.0);
  const ServeResult uhlmann = serve_requests(
      graph, requests, net::CostMetric::InverseEta,
      quantum::FidelityConvention::Uhlmann);
  const ServeResult jozsa = serve_requests(
      graph, requests, net::CostMetric::InverseEta,
      quantum::FidelityConvention::Jozsa);
  EXPECT_LT(jozsa.fidelity.mean(), uhlmann.fidelity.mean());
  EXPECT_NEAR(jozsa.fidelity.mean(),
              uhlmann.fidelity.mean() * uhlmann.fidelity.mean(), 0.01);
}

}  // namespace
}  // namespace qntn::sim
