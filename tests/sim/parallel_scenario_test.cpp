#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "net/routing.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/scenario.hpp"

/// Golden determinism contract of the parallel snapshot engine (DESIGN.md
/// §9/§13): for every topology mode, serving mode and thread count,
/// run_scenario must produce a ScenarioResult — and a trace stream —
/// bitwise identical to the serial run, including when the shared per-epoch
/// route caches are active (eta-independent metrics). EXPECT_EQ on doubles
/// below is deliberate: the ordered reduction promises equality to the last
/// bit, not approximate agreement.

namespace qntn::sim {
namespace {

using core::QntnConfig;
using core::TopologyMode;

ScenarioConfig quick_config(const QntnConfig& config) {
  ScenarioConfig sc = config.scenario_config();
  sc.coverage.duration = 14'400.0;  // 4 hours
  sc.coverage.step = 120.0;
  sc.request_count = 30;
  sc.request_steps = 10;
  sc.request_step_interval = 1440.0;
  return sc;
}

struct RunOutput {
  ScenarioResult result;
  std::string trace;
};

RunOutput run_with(TopologyMode mode, ThreadPool* pool,
                   obs::Registry* registry = nullptr,
                   void (*mutate)(ScenarioConfig&) = nullptr) {
  QntnConfig config;
  config.topology_mode = mode;
  const NetworkModel model = core::build_space_ground_model(config, 12);
  const core::Topology topology = core::make_topology(config, model);
  RunOutput out;
  std::ostringstream trace_stream;
  obs::TraceSink trace(trace_stream, obs::TraceLevel::Requests);
  ScenarioConfig sc = quick_config(config);
  sc.pool = pool;
  sc.trace = &trace;
  sc.registry = registry;
  if (mutate != nullptr) mutate(sc);
  out.result = run_scenario(model, topology.provider(), sc);
  out.trace = trace_stream.str();
  return out;
}

void expect_same_stats(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  if (a.count() == 0 || b.count() == 0) return;
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.stddev(), b.stddev());
}

void expect_identical(const RunOutput& a, const RunOutput& b) {
  EXPECT_EQ(a.result.coverage.percent, b.result.coverage.percent);
  EXPECT_EQ(a.result.coverage.covered_s,
            b.result.coverage.covered_s);
  EXPECT_EQ(a.result.coverage.step_connected, b.result.coverage.step_connected);
  EXPECT_EQ(a.result.served_fraction, b.result.served_fraction);
  expect_same_stats(a.result.served_per_step, b.result.served_per_step);
  expect_same_stats(a.result.fidelity, b.result.fidelity);
  expect_same_stats(a.result.transmissivity, b.result.transmissivity);
  expect_same_stats(a.result.hops, b.result.hops);
  EXPECT_EQ(a.result.requests_issued, b.result.requests_issued);
  EXPECT_EQ(a.result.requests_served, b.result.requests_served);
  EXPECT_EQ(a.result.requests_no_path, b.result.requests_no_path);
  EXPECT_EQ(a.result.requests_isolated, b.result.requests_isolated);
  EXPECT_EQ(a.result.handovers, b.result.handovers);
  EXPECT_EQ(a.result.requests_congested, b.result.requests_congested);
  EXPECT_EQ(a.result.requests_rejected_capacity,
            b.result.requests_rejected_capacity);
  EXPECT_EQ(a.result.requests_dropped_deadline,
            b.result.requests_dropped_deadline);
  EXPECT_EQ(a.result.em.enabled, b.result.em.enabled);
  if (a.result.em.enabled) {
    EXPECT_EQ(a.result.em.swaps, b.result.em.swaps);
    EXPECT_EQ(a.result.em.purification_rounds, b.result.em.purification_rounds);
    EXPECT_EQ(a.result.em.pairs_consumed, b.result.em.pairs_consumed);
    EXPECT_EQ(a.result.em.slo_met, b.result.em.slo_met);
    EXPECT_EQ(a.result.em.spilled, b.result.em.spilled);
    expect_same_stats(a.result.em.memory_occupancy, b.result.em.memory_occupancy);
    expect_same_stats(a.result.em.swap_depth, b.result.em.swap_depth);
    EXPECT_EQ(a.result.em.latency_samples, b.result.em.latency_samples);
  }
  EXPECT_EQ(a.result.traffic.enabled, b.result.traffic.enabled);
  if (a.result.traffic.enabled) {
    expect_same_stats(a.result.traffic.peak_utilisation,
                      b.result.traffic.peak_utilisation);
    EXPECT_EQ(a.result.traffic.peak_queue_depth,
              b.result.traffic.peak_queue_depth);
    EXPECT_EQ(a.result.traffic.latency_samples,
              b.result.traffic.latency_samples);
    EXPECT_EQ(a.result.traffic.waiting_samples,
              b.result.traffic.waiting_samples);
  }
  EXPECT_EQ(a.trace, b.trace);
}

TEST(ParallelScenario, BitIdenticalAcrossThreadCountsContactPlan) {
  const RunOutput serial = run_with(TopologyMode::ContactPlan, nullptr);
  EXPECT_FALSE(serial.trace.empty());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    const RunOutput parallel = run_with(TopologyMode::ContactPlan, &pool);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelScenario, BitIdenticalAcrossThreadCountsRebuild) {
  // The per-step rebuild provider has no epoch partition, so a pool must
  // leave the serial path (and its results) untouched.
  const RunOutput serial = run_with(TopologyMode::Rebuild, nullptr);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    const RunOutput parallel = run_with(TopologyMode::Rebuild, &pool);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelScenario, ModesAgreeUnderTheEngine) {
  // Contact-plan epochs must reproduce the rebuild's scenario bit for bit
  // even when the engine rides the epoch fast paths.
  ThreadPool pool(4);
  const RunOutput rebuild = run_with(TopologyMode::Rebuild, &pool);
  const RunOutput plan = run_with(TopologyMode::ContactPlan, &pool);
  expect_identical(rebuild, plan);
}

TEST(ParallelScenario, EpochCountersReconcileWithQueries) {
  // Engine mode funnels every topology query through snapshot_at, so
  // in-place refreshes plus skeleton builds must account for every query,
  // and the scenario must have taken exactly request_steps snapshots.
  ThreadPool pool(4);
  obs::Registry registry;
  (void)run_with(TopologyMode::ContactPlan, &pool, &registry);
  const std::uint64_t queries = registry.counter("plan.graph_queries");
  const std::uint64_t hits = registry.counter("plan.epoch_hits");
  const std::uint64_t builds = registry.counter("plan.epoch_builds");
  EXPECT_GT(queries, 0u);
  EXPECT_GT(builds, 0u);
  EXPECT_EQ(queries, hits + builds);
  EXPECT_EQ(registry.counter("scenario.snapshots"), 10u);
}

TEST(ParallelScenario, EmModeBitIdenticalAcrossThreadCounts) {
  // Entanglement-management serving with its default HopCount metric: the
  // shared per-epoch route cache (SharedEmRouteCache) is active, so workers
  // at every thread count consult one run-scoped cache — results and trace
  // must still match the serial run to the bit.
  const auto enable_em = [](ScenarioConfig& sc) { sc.em.enabled = true; };
  const RunOutput serial =
      run_with(TopologyMode::ContactPlan, nullptr, nullptr, enable_em);
  EXPECT_TRUE(serial.result.em.enabled);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    const RunOutput parallel =
        run_with(TopologyMode::ContactPlan, &pool, nullptr, enable_em);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelScenario, TrafficModeBitIdenticalAcrossThreadCounts) {
  // Open-arrival traffic serving routed on HopCount: the shared per-epoch
  // tree cache feeds every event window's route lookups. Event windows are
  // chunked across workers, so this exercises concurrent tree_for calls
  // with delta updates at epoch boundaries.
  const auto enable_traffic = [](ScenarioConfig& sc) {
    sc.traffic.enabled = true;
    sc.traffic.metric = net::CostMetric::HopCount;
  };
  const RunOutput serial =
      run_with(TopologyMode::ContactPlan, nullptr, nullptr, enable_traffic);
  EXPECT_TRUE(serial.result.traffic.enabled);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    const RunOutput parallel =
        run_with(TopologyMode::ContactPlan, &pool, nullptr, enable_traffic);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelScenario, HopCountSingleShotBitIdenticalAcrossThreadCounts) {
  // Single-shot serving under HopCount activates the shared tree cache on
  // the paper's own serving path (canonical trees, delta-repaired across
  // epoch boundaries) — still bit-identical at every thread count.
  const auto hop_metric = [](ScenarioConfig& sc) {
    sc.metric = net::CostMetric::HopCount;
  };
  obs::Registry registry;
  const RunOutput serial =
      run_with(TopologyMode::ContactPlan, nullptr, &registry, hop_metric);
  // The shared cache must actually have been consulted, not just bypassed.
  EXPECT_GT(registry.counter("sim.epoch_cache_builds"), 0u);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    const RunOutput parallel =
        run_with(TopologyMode::ContactPlan, &pool, nullptr, hop_metric);
    expect_identical(serial, parallel);
  }
}

// --- Delta-vs-full tree equivalence property test ------------------------

// Deterministic 64-bit LCG (MMIX constants); tests must not depend on
// wall-clock seeding.
std::uint64_t lcg_next(std::uint64_t& state) {
  state = state * 6364136223846793005ULL + 1442695040888963407ULL;
  return state >> 33;
}

TEST(DeltaTree, MatchesFullRebuildOverRandomizedEventStreams) {
  // Property pinned by DESIGN.md §13: for an eta-independent metric,
  // delta_update_tree applied across an arbitrary stream of link-set
  // changes is bit-identical (costs and predecessors) to canonical_tree
  // rebuilt from scratch on the new graph. Random graphs, random toggle
  // streams, every source checked every epoch.
  std::uint64_t rng = 0x5eed5eed5eedULL;
  for (std::size_t trial = 0; trial < 6; ++trial) {
    const std::size_t n = 8 + lcg_next(rng) % 17;  // 8..24 nodes
    net::Graph graph;
    for (std::size_t i = 0; i < n; ++i) graph.add_node();
    // Sparse static skeleton: a short chain, so connectivity hinges on the
    // dynamic tail and the repair regularly sees unreachable regions.
    for (std::size_t i = 0; i + 1 < std::min<std::size_t>(n, 4); ++i) {
      graph.add_edge(i, i + 1, 0.9);
    }
    const std::size_t skeleton = graph.edge_count();

    // Candidate dynamic links with per-candidate fixed transmissivities.
    struct Candidate {
      net::NodeId a, b;
      double eta;
      bool open;
    };
    std::vector<Candidate> candidates;
    const std::size_t n_candidates = 3 * n;
    for (std::size_t c = 0; c < n_candidates; ++c) {
      const net::NodeId a = lcg_next(rng) % n;
      net::NodeId b = lcg_next(rng) % n;
      if (a == b) b = (b + 1) % n;
      const double eta = 0.05 + 0.9 * static_cast<double>(lcg_next(rng) % 100) /
                                    100.0;
      candidates.push_back({a, b, eta, (lcg_next(rng) % 2) == 0});
    }

    const auto rebuild_tail = [&] {
      graph.truncate_edges(skeleton);
      for (const Candidate& c : candidates) {
        if (c.open) graph.add_edge(c.a, c.b, c.eta);
      }
    };

    rebuild_tail();
    std::vector<double> costs;
    net::compute_edge_costs(graph, net::CostMetric::HopCount, costs);
    std::vector<net::ShortestPathTree> base(n);
    for (net::NodeId src = 0; src < n; ++src) {
      base[src] = net::canonical_tree(graph, src, costs);
    }

    for (std::size_t epoch = 0; epoch < 12; ++epoch) {
      SCOPED_TRACE("trial=" + std::to_string(trial) +
                   " epoch=" + std::to_string(epoch));
      // Toggle a random handful of candidates; duplicates in the changed
      // list are allowed by the repair's contract.
      std::vector<net::ChangedPair> changed;
      const std::size_t flips = 1 + lcg_next(rng) % 6;
      for (std::size_t f = 0; f < flips; ++f) {
        Candidate& c = candidates[lcg_next(rng) % candidates.size()];
        c.open = !c.open;
        changed.push_back({c.a, c.b});
      }
      rebuild_tail();
      net::compute_edge_costs(graph, net::CostMetric::HopCount, costs);
      for (net::NodeId src = 0; src < n; ++src) {
        const net::ShortestPathTree full =
            net::canonical_tree(graph, src, costs);
        const net::ShortestPathTree delta =
            net::delta_update_tree(graph, src, costs, base[src], changed);
        EXPECT_EQ(full.cost, delta.cost) << "src=" << src;
        EXPECT_EQ(full.previous, delta.previous) << "src=" << src;
        base[src] = full;
      }
    }
  }
}

TEST(ParallelScenario, SerialContactPlanQueriesCoverEveryStep) {
  // Serial contact-plan runs query once per coverage step plus once per
  // request snapshot, and the hit/build split accounts for every query on
  // the fresh-materialisation path too (graph_at counts as a build).
  obs::Registry registry;
  (void)run_with(TopologyMode::ContactPlan, nullptr, &registry);
  const std::uint64_t queries = registry.counter("plan.graph_queries");
  const std::uint64_t hits = registry.counter("plan.epoch_hits");
  const std::uint64_t builds = registry.counter("plan.epoch_builds");
  EXPECT_EQ(queries, 120u + 10u);  // 4 h / 120 s coverage + 10 snapshots
  EXPECT_EQ(queries, hits + builds);
}

}  // namespace
}  // namespace qntn::sim
