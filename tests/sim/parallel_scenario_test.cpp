#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/scenario.hpp"

/// Golden determinism contract of the parallel snapshot engine (DESIGN.md
/// §9): for every topology mode and thread count, run_scenario must produce
/// a ScenarioResult — and a trace stream — bitwise identical to the serial
/// run. EXPECT_EQ on doubles below is deliberate: the ordered reduction
/// promises equality to the last bit, not approximate agreement.

namespace qntn::sim {
namespace {

using core::QntnConfig;
using core::TopologyMode;

ScenarioConfig quick_config(const QntnConfig& config) {
  ScenarioConfig sc = config.scenario_config();
  sc.coverage.duration = 14'400.0;  // 4 hours
  sc.coverage.step = 120.0;
  sc.request_count = 30;
  sc.request_steps = 10;
  sc.request_step_interval = 1440.0;
  return sc;
}

struct RunOutput {
  ScenarioResult result;
  std::string trace;
};

RunOutput run_with(TopologyMode mode, ThreadPool* pool,
                   obs::Registry* registry = nullptr) {
  QntnConfig config;
  config.topology_mode = mode;
  const NetworkModel model = core::build_space_ground_model(config, 12);
  const core::Topology topology = core::make_topology(config, model);
  RunOutput out;
  std::ostringstream trace_stream;
  obs::TraceSink trace(trace_stream, obs::TraceLevel::Requests);
  ScenarioConfig sc = quick_config(config);
  sc.pool = pool;
  sc.trace = &trace;
  sc.registry = registry;
  out.result = run_scenario(model, topology.provider(), sc);
  out.trace = trace_stream.str();
  return out;
}

void expect_same_stats(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  if (a.count() == 0 || b.count() == 0) return;
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.stddev(), b.stddev());
}

void expect_identical(const RunOutput& a, const RunOutput& b) {
  EXPECT_EQ(a.result.coverage.percent, b.result.coverage.percent);
  EXPECT_EQ(a.result.coverage.covered_s,
            b.result.coverage.covered_s);
  EXPECT_EQ(a.result.coverage.step_connected, b.result.coverage.step_connected);
  EXPECT_EQ(a.result.served_fraction, b.result.served_fraction);
  expect_same_stats(a.result.served_per_step, b.result.served_per_step);
  expect_same_stats(a.result.fidelity, b.result.fidelity);
  expect_same_stats(a.result.transmissivity, b.result.transmissivity);
  expect_same_stats(a.result.hops, b.result.hops);
  EXPECT_EQ(a.result.requests_issued, b.result.requests_issued);
  EXPECT_EQ(a.result.requests_served, b.result.requests_served);
  EXPECT_EQ(a.result.requests_no_path, b.result.requests_no_path);
  EXPECT_EQ(a.result.requests_isolated, b.result.requests_isolated);
  EXPECT_EQ(a.result.handovers, b.result.handovers);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(ParallelScenario, BitIdenticalAcrossThreadCountsContactPlan) {
  const RunOutput serial = run_with(TopologyMode::ContactPlan, nullptr);
  EXPECT_FALSE(serial.trace.empty());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    const RunOutput parallel = run_with(TopologyMode::ContactPlan, &pool);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelScenario, BitIdenticalAcrossThreadCountsRebuild) {
  // The per-step rebuild provider has no epoch partition, so a pool must
  // leave the serial path (and its results) untouched.
  const RunOutput serial = run_with(TopologyMode::Rebuild, nullptr);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    const RunOutput parallel = run_with(TopologyMode::Rebuild, &pool);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelScenario, ModesAgreeUnderTheEngine) {
  // Contact-plan epochs must reproduce the rebuild's scenario bit for bit
  // even when the engine rides the epoch fast paths.
  ThreadPool pool(4);
  const RunOutput rebuild = run_with(TopologyMode::Rebuild, &pool);
  const RunOutput plan = run_with(TopologyMode::ContactPlan, &pool);
  expect_identical(rebuild, plan);
}

TEST(ParallelScenario, EpochCountersReconcileWithQueries) {
  // Engine mode funnels every topology query through snapshot_at, so
  // in-place refreshes plus skeleton builds must account for every query,
  // and the scenario must have taken exactly request_steps snapshots.
  ThreadPool pool(4);
  obs::Registry registry;
  (void)run_with(TopologyMode::ContactPlan, &pool, &registry);
  const std::uint64_t queries = registry.counter("plan.graph_queries");
  const std::uint64_t hits = registry.counter("plan.epoch_hits");
  const std::uint64_t builds = registry.counter("plan.epoch_builds");
  EXPECT_GT(queries, 0u);
  EXPECT_GT(builds, 0u);
  EXPECT_EQ(queries, hits + builds);
  EXPECT_EQ(registry.counter("scenario.snapshots"), 10u);
}

TEST(ParallelScenario, SerialContactPlanQueriesCoverEveryStep) {
  // Serial contact-plan runs query once per coverage step plus once per
  // request snapshot, and the hit/build split accounts for every query on
  // the fresh-materialisation path too (graph_at counts as a build).
  obs::Registry registry;
  (void)run_with(TopologyMode::ContactPlan, nullptr, &registry);
  const std::uint64_t queries = registry.counter("plan.graph_queries");
  const std::uint64_t hits = registry.counter("plan.epoch_hits");
  const std::uint64_t builds = registry.counter("plan.epoch_builds");
  EXPECT_EQ(queries, 120u + 10u);  // 4 h / 120 s coverage + 10 snapshots
  EXPECT_EQ(queries, hits + builds);
}

}  // namespace
}  // namespace qntn::sim
