#include "sim/endurance.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "sim/coverage.hpp"

namespace qntn::sim {
namespace {

using core::QntnConfig;

TEST(DutyCycle, AlwaysActiveWithoutDowntime) {
  const DutyCycle cycle{3600.0, 0.0, 0.0};
  for (double t : {0.0, 1e4, 1e6}) EXPECT_TRUE(cycle.active_at(t));
  EXPECT_DOUBLE_EQ(cycle.availability(), 1.0);
}

TEST(DutyCycle, PeriodicPattern) {
  // 60 s on, 30 s off.
  const DutyCycle cycle{60.0, 30.0, 0.0};
  EXPECT_TRUE(cycle.active_at(0.0));
  EXPECT_TRUE(cycle.active_at(59.0));
  EXPECT_FALSE(cycle.active_at(60.0));
  EXPECT_FALSE(cycle.active_at(89.0));
  EXPECT_TRUE(cycle.active_at(90.0));  // next period
  EXPECT_NEAR(cycle.availability(), 2.0 / 3.0, 1e-12);
}

TEST(DutyCycle, PhaseShiftsTheCycle) {
  const DutyCycle cycle{60.0, 30.0, 45.0};
  EXPECT_TRUE(cycle.active_at(45.0));
  EXPECT_FALSE(cycle.active_at(106.0));
  // Negative local times wrap correctly.
  EXPECT_FALSE(cycle.active_at(30.0));  // 30 - 45 = -15 -> 75 into period
}

TEST(DutyCycle, RejectsBadConfig) {
  const DutyCycle bad{0.0, 10.0, 0.0};
  EXPECT_THROW((void)bad.active_at(0.0), PreconditionError);
  EXPECT_THROW((void)bad.availability(), PreconditionError);
  const DutyCycle negative{10.0, -1.0, 0.0};
  EXPECT_THROW((void)negative.active_at(0.0), PreconditionError);
}

TEST(DutyCycledTopology, RemovesOnlyAffectedLinksDuringDowntime) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder base(model, config.link_policy());
  const DutyCycle cycle{3600.0, 3600.0, 0.0};  // on the first hour, off next
  const DutyCycledTopology topology(base, {model.hap_ids().front()}, cycle);

  const net::Graph active = topology.graph_at(100.0);
  EXPECT_EQ(active.edge_count(), base.graph_at(100.0).edge_count());

  const net::Graph down = topology.graph_at(3700.0);
  EXPECT_EQ(down.edge_count(), 170u);  // fiber only: all HAP links gone
  EXPECT_EQ(down.node_count(), active.node_count());  // node ids stable
}

TEST(DutyCycledTopology, ErodesAirGroundCoverageProportionally) {
  // The paper's caveat quantified: a HAP that is down half the time can
  // cover at most ~half the day.
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder base(model, config.link_policy());
  const DutyCycle cycle{7200.0, 7200.0, 0.0};  // 50% availability
  const DutyCycledTopology topology(base, {model.hap_ids().front()}, cycle);

  CoverageOptions options;
  options.duration = 86'400.0;
  options.step = 600.0;
  const CoverageResult result = analyze_coverage(model, topology, options);
  EXPECT_NEAR(result.percent, 50.0, 2.0);
  EXPECT_GT(result.intervals.episode_count(), 1u);  // fragmented coverage
}

TEST(DutyCycledTopology, UnaffectedNodesKeepTheirLinks) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder base(model, config.link_policy());
  // Duty-cycle a ground node instead of the HAP: during downtime the HAP
  // links of other nodes survive.
  const DutyCycle cycle{10.0, 1e9, 0.0};  // down after t = 10 s forever
  const DutyCycledTopology topology(base, {model.lan_nodes(0).front()}, cycle);
  const net::Graph down = topology.graph_at(1000.0);
  // Only edges touching that one node disappeared: 4 fiber + 1 HAP link.
  EXPECT_EQ(down.edge_count(), base.graph_at(1000.0).edge_count() - 5u);
}

}  // namespace
}  // namespace qntn::sim
