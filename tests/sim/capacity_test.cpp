#include "sim/capacity.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "sim/topology.hpp"

namespace qntn::sim {
namespace {

using core::QntnConfig;

std::vector<Request> qntn_requests(const NetworkModel& model, std::size_t n) {
  Rng rng(21);
  return generate_requests(model, n, rng);
}

TEST(Capacity, UnlimitedEnoughCapacityMatchesBaseline) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const net::Graph graph = topology.graph_at(0.0);
  const auto requests = qntn_requests(model, 40);

  const ServeResult unlimited = serve_requests(graph, requests);
  CapacityPolicy generous;
  generous.per_node_capacity = 1000;
  const CapacityServeResult limited =
      serve_requests_with_capacity(graph, requests, generous);
  EXPECT_EQ(limited.outcome.served, unlimited.served);
  EXPECT_EQ(limited.outcome.rejected_capacity, 0u);
  EXPECT_NEAR(limited.outcome.fidelity.mean(), unlimited.fidelity.mean(),
              1e-12);
}

TEST(Capacity, HapSaturationCapsService) {
  // Every air-ground route relays through the single HAP; with capacity C
  // the HAP can take part in at most C pairs.
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const net::Graph graph = topology.graph_at(0.0);
  const auto requests = qntn_requests(model, 50);

  CapacityPolicy tight;
  tight.per_node_capacity = 10;
  const CapacityServeResult result =
      serve_requests_with_capacity(graph, requests, tight);
  EXPECT_EQ(result.outcome.served, 10u);
  EXPECT_EQ(result.outcome.rejected_capacity, 40u);
  EXPECT_EQ(result.outcome.no_path, 0u);
  EXPECT_DOUBLE_EQ(result.peak_utilisation, 1.0);
}

TEST(Capacity, OutcomeReconciles) {
  // The ServeOutcome identity pins capacity serving to the common
  // accounting shape: issued = served + no_path + rejected_capacity (the
  // engine never produces the other buckets).
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const net::Graph graph = topology.graph_at(0.0);
  const auto requests = qntn_requests(model, 30);
  CapacityPolicy policy;
  policy.per_node_capacity = 7;
  const CapacityServeResult result =
      serve_requests_with_capacity(graph, requests, policy);
  EXPECT_TRUE(result.outcome.reconciles());
  EXPECT_EQ(result.outcome.issued, 30u);
  EXPECT_EQ(result.outcome.isolated, 0u);
  EXPECT_EQ(result.outcome.congested, 0u);
  EXPECT_EQ(result.outcome.dropped_deadline, 0u);
  EXPECT_EQ(result.outcome.served + result.outcome.rejected_capacity +
                result.outcome.no_path,
            result.outcome.issued);
}

TEST(Capacity, DisconnectedRequestsAreNoPathNotCapacity) {
  const QntnConfig config;
  const NetworkModel model = core::build_ground_model(config);  // no relays
  const TopologyBuilder topology(model, config.link_policy());
  const net::Graph graph = topology.graph_at(0.0);
  const auto requests = qntn_requests(model, 20);
  const CapacityServeResult result =
      serve_requests_with_capacity(graph, requests, CapacityPolicy{});
  EXPECT_EQ(result.outcome.served, 0u);
  EXPECT_EQ(result.outcome.rejected_capacity, 0u);
  EXPECT_EQ(result.outcome.no_path, 20u);
  EXPECT_TRUE(result.outcome.reconciles());
}

TEST(Capacity, PeakUtilisationZeroWithoutServedWork) {
  // Relays that never carry a pair consume no capacity: an empty workload
  // and an all-unreachable workload must both leave peak_utilisation at 0.
  net::Graph graph;
  const net::NodeId a = graph.add_node("a");
  const net::NodeId relay = graph.add_node("relay");
  const net::NodeId b = graph.add_node("b");
  const net::NodeId lonely = graph.add_node("lonely");
  graph.add_edge(a, relay, 0.9);
  graph.add_edge(relay, b, 0.9);

  const CapacityServeResult idle =
      serve_requests_with_capacity(graph, {}, CapacityPolicy{});
  EXPECT_EQ(idle.outcome.issued, 0u);
  EXPECT_DOUBLE_EQ(idle.peak_utilisation, 0.0);
  EXPECT_TRUE(idle.outcome.reconciles());

  const std::vector<Request> unreachable{{a, lonely}, {b, lonely}};
  const CapacityServeResult blocked =
      serve_requests_with_capacity(graph, unreachable, CapacityPolicy{});
  EXPECT_EQ(blocked.outcome.no_path, 2u);
  EXPECT_DOUBLE_EQ(blocked.peak_utilisation, 0.0);
}

TEST(Capacity, ReroutesAroundSaturatedRelays) {
  // Two parallel relays between two endpoints: with capacity 1 per node the
  // second request must take the second relay.
  net::Graph graph;
  const net::NodeId s = graph.add_node("s");
  const net::NodeId r1 = graph.add_node("r1");
  const net::NodeId r2 = graph.add_node("r2");
  const net::NodeId d = graph.add_node("d");
  graph.add_edge(s, r1, 0.95);
  graph.add_edge(r1, d, 0.95);
  graph.add_edge(s, r2, 0.80);  // worse relay, used only under pressure
  graph.add_edge(r2, d, 0.80);

  // Two requests between the same endpoints. Endpoint capacity must allow
  // both, relay capacity only one each.
  const std::vector<Request> requests{{s, d}, {s, d}};
  CapacityPolicy policy;
  policy.per_node_capacity = 2;
  const CapacityServeResult result =
      serve_requests_with_capacity(graph, requests, policy);
  EXPECT_EQ(result.outcome.served, 2u);
  CapacityPolicy one;
  one.per_node_capacity = 1;
  const CapacityServeResult strict =
      serve_requests_with_capacity(graph, {{s, d}}, one);
  EXPECT_EQ(strict.outcome.served, 1u);
  EXPECT_NEAR(strict.outcome.transmissivity.mean(), 0.95 * 0.95, 1e-12);
}

TEST(Capacity, SaturationReroutingIsDeterministic) {
  // A shared best relay and a worse fallback: with capacity 1 the second
  // request (distinct endpoints) must spill onto the fallback relay, and
  // repeated runs must agree bit-for-bit.
  net::Graph graph;
  const net::NodeId s1 = graph.add_node("s1");
  const net::NodeId s2 = graph.add_node("s2");
  const net::NodeId d1 = graph.add_node("d1");
  const net::NodeId d2 = graph.add_node("d2");
  const net::NodeId best = graph.add_node("best");
  const net::NodeId fallback = graph.add_node("fallback");
  graph.add_edge(s1, best, 0.9);
  graph.add_edge(best, d1, 0.9);
  graph.add_edge(s2, best, 0.9);
  graph.add_edge(best, d2, 0.9);
  graph.add_edge(s1, fallback, 0.7);
  graph.add_edge(fallback, d1, 0.7);
  graph.add_edge(s2, fallback, 0.7);
  graph.add_edge(fallback, d2, 0.7);

  const std::vector<Request> requests{{s1, d1}, {s2, d2}};
  CapacityPolicy one;
  one.per_node_capacity = 1;
  const CapacityServeResult first =
      serve_requests_with_capacity(graph, requests, one);
  EXPECT_EQ(first.outcome.served, 2u);
  EXPECT_EQ(first.outcome.rejected_capacity, 0u);
  // Request order decides who gets the best relay: the first rides it
  // (eta 0.81), the second reroutes onto the fallback (eta 0.49).
  EXPECT_NEAR(first.outcome.transmissivity.mean(), (0.81 + 0.49) / 2.0,
              1e-12);
  EXPECT_DOUBLE_EQ(first.peak_utilisation, 1.0);

  const CapacityServeResult second =
      serve_requests_with_capacity(graph, requests, one);
  EXPECT_EQ(second.outcome.served, first.outcome.served);
  EXPECT_DOUBLE_EQ(second.outcome.transmissivity.mean(),
                   first.outcome.transmissivity.mean());
  EXPECT_DOUBLE_EQ(second.outcome.fidelity.mean(),
                   first.outcome.fidelity.mean());
  EXPECT_DOUBLE_EQ(second.peak_utilisation, first.peak_utilisation);
}

TEST(Capacity, RejectsZeroCapacity) {
  net::Graph graph;
  graph.add_node();
  EXPECT_THROW((void)serve_requests_with_capacity(graph, {}, {0}),
               PreconditionError);
}

}  // namespace
}  // namespace qntn::sim
