#include "sim/capacity.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "sim/topology.hpp"

namespace qntn::sim {
namespace {

using core::QntnConfig;

std::vector<Request> qntn_requests(const NetworkModel& model, std::size_t n) {
  Rng rng(21);
  return generate_requests(model, n, rng);
}

TEST(Capacity, UnlimitedEnoughCapacityMatchesBaseline) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const net::Graph graph = topology.graph_at(0.0);
  const auto requests = qntn_requests(model, 40);

  const ServeResult unlimited = serve_requests(graph, requests);
  CapacityPolicy generous;
  generous.per_node_capacity = 1000;
  const CapacityServeResult limited =
      serve_requests_with_capacity(graph, requests, generous);
  EXPECT_EQ(limited.base.served, unlimited.served);
  EXPECT_EQ(limited.rejected_capacity, 0u);
  EXPECT_NEAR(limited.base.fidelity.mean(), unlimited.fidelity.mean(), 1e-12);
}

TEST(Capacity, HapSaturationCapsService) {
  // Every air-ground route relays through the single HAP; with capacity C
  // the HAP can take part in at most C pairs.
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const net::Graph graph = topology.graph_at(0.0);
  const auto requests = qntn_requests(model, 50);

  CapacityPolicy tight;
  tight.per_node_capacity = 10;
  const CapacityServeResult result =
      serve_requests_with_capacity(graph, requests, tight);
  EXPECT_EQ(result.base.served, 10u);
  EXPECT_EQ(result.rejected_capacity, 40u);
  EXPECT_EQ(result.rejected_unreachable, 0u);
  EXPECT_DOUBLE_EQ(result.peak_utilisation, 1.0);
}

TEST(Capacity, AccountingIsConsistent) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const net::Graph graph = topology.graph_at(0.0);
  const auto requests = qntn_requests(model, 30);
  CapacityPolicy policy;
  policy.per_node_capacity = 7;
  const CapacityServeResult result =
      serve_requests_with_capacity(graph, requests, policy);
  EXPECT_EQ(result.base.served + result.rejected_capacity +
                result.rejected_unreachable,
            result.base.total);
}

TEST(Capacity, DisconnectedRequestsAreUnreachableNotCapacity) {
  const QntnConfig config;
  const NetworkModel model = core::build_ground_model(config);  // no relays
  const TopologyBuilder topology(model, config.link_policy());
  const net::Graph graph = topology.graph_at(0.0);
  const auto requests = qntn_requests(model, 20);
  const CapacityServeResult result =
      serve_requests_with_capacity(graph, requests, CapacityPolicy{});
  EXPECT_EQ(result.base.served, 0u);
  EXPECT_EQ(result.rejected_capacity, 0u);
  EXPECT_EQ(result.rejected_unreachable, 20u);
}

TEST(Capacity, ReroutesAroundSaturatedRelays) {
  // Two parallel relays between two endpoints: with capacity 1 per node the
  // second request must take the second relay.
  net::Graph graph;
  const net::NodeId s = graph.add_node("s");
  const net::NodeId r1 = graph.add_node("r1");
  const net::NodeId r2 = graph.add_node("r2");
  const net::NodeId d = graph.add_node("d");
  graph.add_edge(s, r1, 0.95);
  graph.add_edge(r1, d, 0.95);
  graph.add_edge(s, r2, 0.80);  // worse relay, used only under pressure
  graph.add_edge(r2, d, 0.80);

  // Two requests between the same endpoints. Endpoint capacity must allow
  // both, relay capacity only one each.
  const std::vector<Request> requests{{s, d}, {s, d}};
  CapacityPolicy policy;
  policy.per_node_capacity = 2;
  // Relay nodes saturate at 2 too, so both could go via r1; shrink to see
  // the reroute: use capacity 1 relays by giving endpoints their own slots.
  // With per-node capacity 1 the endpoints themselves saturate after one
  // request; use capacity 2 and check both served with distinct relays via
  // transmissivity bookkeeping.
  const CapacityServeResult result =
      serve_requests_with_capacity(graph, requests, policy);
  EXPECT_EQ(result.base.served, 2u);
  // First route via r1 (eta 0.9025), second... r1 still has one slot, so
  // both can use r1 here; tighten to capacity 1 on a 3-request variant:
  CapacityPolicy one;
  one.per_node_capacity = 1;
  const CapacityServeResult strict =
      serve_requests_with_capacity(graph, {{s, d}}, one);
  EXPECT_EQ(strict.base.served, 1u);
  EXPECT_NEAR(strict.base.transmissivity.mean(), 0.95 * 0.95, 1e-12);
}

TEST(Capacity, RejectsZeroCapacity) {
  net::Graph graph;
  graph.add_node();
  EXPECT_THROW((void)serve_requests_with_capacity(graph, {}, {0}),
               PreconditionError);
}

}  // namespace
}  // namespace qntn::sim
