#include "sim/daylight.hpp"

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "common/units.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "sim/coverage.hpp"

namespace qntn::sim {
namespace {

using core::QntnConfig;

/// Subsolar longitude chosen so Tennessee (-85 deg) is at local noon at
/// t = 0: the HAP/satellite links must be gated then.
DaylightPolicy noon_over_tennessee() {
  DaylightPolicy policy;
  policy.sun.subsolar_longitude0 = deg_to_rad(-85.0);
  return policy;
}

TEST(Daylight, GatesHapLinksAtLocalNoonOnly) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder base(model, config.link_policy());
  const DaylightGatedTopology gated(base, model, noon_over_tennessee());

  // Local noon: only the 170 fiber links remain.
  EXPECT_EQ(gated.graph_at(0.0).edge_count(), 170u);
  // Local midnight: all links restored.
  EXPECT_EQ(gated.graph_at(43'200.0).edge_count(),
            base.graph_at(43'200.0).edge_count());
}

TEST(Daylight, FiberNeverGated) {
  const QntnConfig config;
  const NetworkModel model = core::build_ground_model(config);
  const TopologyBuilder base(model, config.link_policy());
  const DaylightGatedTopology gated(base, model, noon_over_tennessee());
  for (double t = 0.0; t < 86'400.0; t += 7'200.0) {
    EXPECT_EQ(gated.graph_at(t).edge_count(), 170u) << t;
  }
}

TEST(Daylight, HapGateCanBeDisabled) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder base(model, config.link_policy());
  DaylightPolicy policy = noon_over_tennessee();
  policy.gate_hap_links = false;
  const DaylightGatedTopology gated(base, model, policy);
  EXPECT_EQ(gated.graph_at(0.0).edge_count(), base.graph_at(0.0).edge_count());
}

TEST(Daylight, HalvesAirGroundCoverage) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder base(model, config.link_policy());
  const DaylightGatedTopology gated(base, model, noon_over_tennessee());
  CoverageOptions options;
  options.duration = 86'400.0;
  options.step = 600.0;
  const CoverageResult result = analyze_coverage(model, gated, options);
  // Equinox night fraction at Tennessee's latitude is just under half.
  EXPECT_GT(result.percent, 38.0);
  EXPECT_LT(result.percent, 52.0);
}

TEST(Daylight, SpaceGroundCoverageAlsoDrops) {
  QntnConfig config;
  config.day_duration = 86'400.0;
  const NetworkModel model = core::build_space_ground_model(config, 36);
  const TopologyBuilder base(model, config.link_policy());
  const DaylightGatedTopology gated(base, model, noon_over_tennessee());
  CoverageOptions options;
  options.duration = 86'400.0;
  options.step = 600.0;
  const CoverageResult ungated = analyze_coverage(model, base, options);
  const CoverageResult night_only = analyze_coverage(model, gated, options);
  EXPECT_LT(night_only.percent, ungated.percent);
  EXPECT_GT(night_only.percent, 0.0);
}

}  // namespace
}  // namespace qntn::sim
