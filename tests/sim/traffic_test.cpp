#include "sim/traffic.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"

namespace qntn::sim {
namespace {

using core::QntnConfig;

TrafficConfig light_load() {
  TrafficConfig config;
  config.duration = 600.0;
  config.arrival_rate = 0.2;
  config.node_capacity = 8;
  return config;
}

TEST(Traffic, NoArrivalsNoActivity) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  TrafficConfig tc = light_load();
  tc.arrival_rate = 0.0;
  const TrafficResult result = run_traffic_simulation(model, topology, tc);
  EXPECT_EQ(result.arrivals, 0u);
  EXPECT_EQ(result.served, 0u);
  EXPECT_DOUBLE_EQ(result.throughput(tc.duration), 0.0);
}

TEST(Traffic, DeterministicForFixedSeed) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const TrafficResult a = run_traffic_simulation(model, topology, light_load());
  const TrafficResult b = run_traffic_simulation(model, topology, light_load());
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.served, b.served);
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_DOUBLE_EQ(a.fidelity.mean(), b.fidelity.mean());
}

TEST(Traffic, LightLoadOnAirGroundServesEverything) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const TrafficResult result =
      run_traffic_simulation(model, topology, light_load());
  ASSERT_GT(result.arrivals, 50u);  // ~120 expected
  EXPECT_EQ(result.served, result.arrivals);
  EXPECT_EQ(result.dropped_no_path, 0u);
  EXPECT_EQ(result.dropped_queue, 0u);
  // Latency is dominated by the configured overhead plus ~ms of light time.
  EXPECT_GT(result.latency.mean(), 0.01);
  EXPECT_LT(result.latency.mean(), 0.02);
  EXPECT_NEAR(result.waiting.mean(), 0.0, 1e-9);
}

TEST(Traffic, PercentilesBackedByOneSamplePerServedRequest) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const TrafficResult result =
      run_traffic_simulation(model, topology, light_load());
  ASSERT_GT(result.served, 0u);
  EXPECT_EQ(result.latency_samples.size(), result.served);
  EXPECT_EQ(result.waiting_samples.size(), result.served);
  // Tails are ordered and bracketed by the running stats' extremes.
  const double p50 = result.latency_percentile(0.50);
  const double p95 = result.latency_percentile(0.95);
  const double p99 = result.latency_percentile(0.99);
  EXPECT_LE(result.latency.min(), p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, result.latency.max());
  EXPECT_LE(result.waiting_percentile(0.50), result.waiting_percentile(0.99));
  // Empty distributions report 0 instead of throwing.
  const TrafficResult empty;
  EXPECT_DOUBLE_EQ(empty.latency_percentile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(empty.waiting_percentile(0.5), 0.0);
}

TEST(Traffic, AccountingAlwaysBalances) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  for (double rate : {0.5, 5.0, 50.0}) {
    TrafficConfig tc = light_load();
    tc.duration = 120.0;
    tc.arrival_rate = rate;
    const TrafficResult result = run_traffic_simulation(model, topology, tc);
    EXPECT_EQ(result.served + result.dropped_no_path + result.dropped_queue,
              result.arrivals)
        << rate;
  }
}

TEST(Traffic, OverloadSaturatesAndQueues) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  TrafficConfig tc;
  tc.duration = 120.0;
  tc.arrival_rate = 200.0;   // far above the HAP's service capacity
  tc.node_capacity = 2;
  tc.service_overhead = 0.05;
  const TrafficResult result = run_traffic_simulation(model, topology, tc);
  EXPECT_GT(result.dropped_queue, 0u);
  EXPECT_LT(result.served_fraction(), 0.5);
  // Throughput is pinned near capacity / service_time = 2 / 0.05 = 40/s
  // (the HAP is on every route).
  EXPECT_NEAR(result.throughput(tc.duration), 40.0, 8.0);
  if (result.waiting.count() > 0) {
    EXPECT_GT(result.waiting.max(), 0.0);
  }
}

TEST(Traffic, QueueingCostsFidelityThroughMemory) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  TrafficConfig relaxed = light_load();
  TrafficConfig loaded = light_load();
  loaded.arrival_rate = 100.0;
  loaded.node_capacity = 2;
  loaded.service_overhead = 0.05;
  loaded.max_queue_delay = 2.0;
  loaded.memory.t1 = 0.5;
  loaded.memory.t2 = 0.2;
  relaxed.memory = loaded.memory;
  const TrafficResult fast = run_traffic_simulation(model, topology, relaxed);
  const TrafficResult slow = run_traffic_simulation(model, topology, loaded);
  ASSERT_GT(slow.served, 0u);
  EXPECT_LT(slow.fidelity.mean(), fast.fidelity.mean());
}

TEST(Traffic, GroundOnlyNetworkDropsEverythingAsNoPath) {
  const QntnConfig config;
  const NetworkModel model = core::build_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const TrafficResult result =
      run_traffic_simulation(model, topology, light_load());
  EXPECT_EQ(result.served, 0u);
  EXPECT_EQ(result.dropped_no_path, result.arrivals);
}

TEST(Traffic, RejectsBadConfig) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  TrafficConfig bad = light_load();
  bad.node_capacity = 0;
  EXPECT_THROW((void)run_traffic_simulation(model, topology, bad),
               PreconditionError);
  bad = light_load();
  bad.duration = 0.0;
  EXPECT_THROW((void)run_traffic_simulation(model, topology, bad),
               PreconditionError);
}

}  // namespace
}  // namespace qntn::sim
