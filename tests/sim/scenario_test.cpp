#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"

namespace qntn::sim {
namespace {

using core::QntnConfig;

ScenarioConfig quick_config(const QntnConfig& config) {
  ScenarioConfig sc = config.scenario_config();
  sc.coverage.duration = 14'400.0;  // 4 hours
  sc.coverage.step = 120.0;
  sc.request_count = 30;
  sc.request_steps = 10;
  sc.request_step_interval = 1440.0;
  return sc;
}

TEST(Scenario, AirGroundFullService) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const ScenarioResult result =
      run_scenario(model, topology, quick_config(config));
  EXPECT_DOUBLE_EQ(result.coverage.percent, 100.0);
  EXPECT_DOUBLE_EQ(result.served_fraction, 1.0);
  EXPECT_GT(result.fidelity.mean(), 0.9);
  EXPECT_EQ(result.fidelity.count(), 300u);  // 30 requests x 10 steps
  // A static topology serves identically at every step.
  EXPECT_DOUBLE_EQ(result.served_per_step.min(), result.served_per_step.max());
}

TEST(Scenario, SpaceGroundPartialService) {
  const QntnConfig config;
  const NetworkModel model = core::build_space_ground_model(config, 12);
  const TopologyBuilder topology(model, config.link_policy());
  const ScenarioResult result =
      run_scenario(model, topology, quick_config(config));
  EXPECT_LT(result.coverage.percent, 100.0);
  EXPECT_LT(result.served_fraction, 1.0);
  // Every served request meets the fidelity the threshold guarantees for a
  // two-hop FSO relay: eta_path >= threshold^2.
  if (result.fidelity.count() > 0) {
    const double floor = quantum::bell_fidelity_after_damping(
        0.7 * 0.7, quantum::FidelityConvention::Uhlmann);
    EXPECT_GE(result.fidelity.min(), floor - 1e-9);
  }
}

TEST(Scenario, StatsAggregateAcrossSteps) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  ScenarioConfig sc = quick_config(config);
  sc.request_steps = 4;
  const ScenarioResult result = run_scenario(model, topology, sc);
  EXPECT_EQ(result.served_per_step.count(), 4u);
  EXPECT_EQ(result.fidelity.count(), 30u * 4u);
  EXPECT_EQ(result.hops.count(), result.fidelity.count());
}

TEST(Scenario, DeterministicAcrossRuns) {
  const QntnConfig config;
  const NetworkModel model = core::build_space_ground_model(config, 6);
  const TopologyBuilder topology(model, config.link_policy());
  const ScenarioConfig sc = quick_config(config);
  const ScenarioResult a = run_scenario(model, topology, sc);
  const ScenarioResult b = run_scenario(model, topology, sc);
  EXPECT_DOUBLE_EQ(a.coverage.percent, b.coverage.percent);
  EXPECT_DOUBLE_EQ(a.served_fraction, b.served_fraction);
  EXPECT_DOUBLE_EQ(a.fidelity.mean(), b.fidelity.mean());
}

}  // namespace
}  // namespace qntn::sim
