#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "obs/registry.hpp"

namespace qntn::sim {
namespace {

using core::QntnConfig;

ScenarioConfig quick_config(const QntnConfig& config) {
  ScenarioConfig sc = config.scenario_config();
  sc.coverage.duration = 14'400.0;  // 4 hours
  sc.coverage.step = 120.0;
  sc.request_count = 30;
  sc.request_steps = 10;
  sc.request_step_interval = 1440.0;
  return sc;
}

TEST(Scenario, AirGroundFullService) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const ScenarioResult result =
      run_scenario(model, topology, quick_config(config));
  EXPECT_DOUBLE_EQ(result.coverage.percent, 100.0);
  EXPECT_DOUBLE_EQ(result.served_fraction, 1.0);
  EXPECT_GT(result.fidelity.mean(), 0.9);
  EXPECT_EQ(result.fidelity.count(), 300u);  // 30 requests x 10 steps
  // A static topology serves identically at every step.
  EXPECT_DOUBLE_EQ(result.served_per_step.min(), result.served_per_step.max());
}

TEST(Scenario, SpaceGroundPartialService) {
  const QntnConfig config;
  const NetworkModel model = core::build_space_ground_model(config, 12);
  const TopologyBuilder topology(model, config.link_policy());
  const ScenarioResult result =
      run_scenario(model, topology, quick_config(config));
  EXPECT_LT(result.coverage.percent, 100.0);
  EXPECT_LT(result.served_fraction, 1.0);
  // Every served request meets the fidelity the threshold guarantees for a
  // two-hop FSO relay: eta_path >= threshold^2.
  if (result.fidelity.count() > 0) {
    const double floor = quantum::bell_fidelity_after_damping(
        0.7 * 0.7, quantum::FidelityConvention::Uhlmann);
    EXPECT_GE(result.fidelity.min(), floor - 1e-9);
  }
}

TEST(Scenario, StatsAggregateAcrossSteps) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  ScenarioConfig sc = quick_config(config);
  sc.request_steps = 4;
  const ScenarioResult result = run_scenario(model, topology, sc);
  EXPECT_EQ(result.served_per_step.count(), 4u);
  EXPECT_EQ(result.fidelity.count(), 30u * 4u);
  EXPECT_EQ(result.hops.count(), result.fidelity.count());
}

TEST(Scenario, OversizedStepIntervalIsClampedToTheDay) {
  // Regression: an interval that walks the snapshots past the scenario day
  // used to sample ephemerides beyond their span. run_scenario must clamp
  // it (with a warning + counter) to exactly the explicit tiling.
  const QntnConfig config;
  const NetworkModel model = core::build_space_ground_model(config, 12);
  const TopologyBuilder topology(model, config.link_policy());

  ScenarioConfig oversized = quick_config(config);
  oversized.request_step_interval = 5'000.0;  // 10 x 5000 s >> 14400 s day
  obs::Registry registry;
  oversized.registry = &registry;
  const ScenarioResult clamped = run_scenario(model, topology, oversized);

  ScenarioConfig explicit_tiling = quick_config(config);
  explicit_tiling.request_step_interval = 1'440.0;  // 14400 / 10 exactly
  const ScenarioResult reference =
      run_scenario(model, topology, explicit_tiling);

  EXPECT_EQ(registry.counter("scenario.interval_clamped"), 1u);
  EXPECT_DOUBLE_EQ(clamped.served_fraction, reference.served_fraction);
  EXPECT_DOUBLE_EQ(clamped.fidelity.mean(), reference.fidelity.mean());
  EXPECT_EQ(clamped.requests_served, reference.requests_served);

  // An interval that fits the day stays untouched.
  ScenarioConfig fitting = quick_config(config);
  obs::Registry quiet;
  fitting.registry = &quiet;
  (void)run_scenario(model, topology, fitting);
  EXPECT_EQ(quiet.counter("scenario.interval_clamped"), 0u);
}

TEST(Scenario, RequestAccountingReconciles) {
  const QntnConfig config;
  const NetworkModel model = core::build_space_ground_model(config, 12);
  const TopologyBuilder topology(model, config.link_policy());
  const ScenarioResult result =
      run_scenario(model, topology, quick_config(config));
  EXPECT_EQ(result.requests_issued, 30u * 10u);
  EXPECT_EQ(result.requests_served + result.requests_no_path +
                result.requests_isolated,
            result.requests_issued);
  EXPECT_NEAR(static_cast<double>(result.requests_served) /
                  static_cast<double>(result.requests_issued),
              result.served_fraction, 1e-12);
  EXPECT_EQ(result.fidelity.count(), result.requests_served);
}

TEST(Scenario, DeterministicAcrossRuns) {
  const QntnConfig config;
  const NetworkModel model = core::build_space_ground_model(config, 6);
  const TopologyBuilder topology(model, config.link_policy());
  const ScenarioConfig sc = quick_config(config);
  const ScenarioResult a = run_scenario(model, topology, sc);
  const ScenarioResult b = run_scenario(model, topology, sc);
  EXPECT_DOUBLE_EQ(a.coverage.percent, b.coverage.percent);
  EXPECT_DOUBLE_EQ(a.served_fraction, b.served_fraction);
  EXPECT_DOUBLE_EQ(a.fidelity.mean(), b.fidelity.mean());
}

}  // namespace
}  // namespace qntn::sim
