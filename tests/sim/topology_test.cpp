#include "sim/topology.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"

namespace qntn::sim {
namespace {

using core::QntnConfig;

TEST(Topology, GroundOnlyModelHasOnlyFiberMeshes) {
  const QntnConfig config;
  const NetworkModel model = core::build_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const net::Graph g = topology.graph_at(0.0);
  EXPECT_EQ(g.node_count(), 31u);  // 5 + 15 + 11 (Table I)
  // Full meshes: C(5,2) + C(15,2) + C(11,2) = 10 + 105 + 55.
  EXPECT_EQ(g.edge_count(), 170u);
  // The three LANs stay disconnected from each other (fiber cannot span
  // the inter-city distances at the 0.7 threshold).
  EXPECT_FALSE(g.connected(model.lan_nodes(0).front(),
                           model.lan_nodes(1).front()));
  EXPECT_FALSE(g.connected(model.lan_nodes(0).front(),
                           model.lan_nodes(2).front()));
}

TEST(Topology, LanTopologyVariants) {
  QntnConfig config;
  config.lan_topology = LanTopology::Chain;
  const NetworkModel model = core::build_ground_model(config);
  {
    const TopologyBuilder topology(model, config.link_policy());
    // Chains: 4 + 14 + 10 edges.
    EXPECT_EQ(topology.graph_at(0.0).edge_count(), 28u);
  }
  config.lan_topology = LanTopology::Star;
  {
    const TopologyBuilder topology(model, config.link_policy());
    EXPECT_EQ(topology.graph_at(0.0).edge_count(), 28u);  // same count, star
  }
}

TEST(Topology, IntraLanFiberIsNearLossless) {
  const QntnConfig config;
  const NetworkModel model = core::build_ground_model(config);
  // The longest Table I span (ORNL, ~2 km) still loses < 0.35 dB.
  const TopologyBuilder topology(model, config.link_policy());
  for (const LinkRecord& link : topology.links_at(0.0)) {
    EXPECT_GT(link.transmissivity, 0.9);
  }
}

TEST(Topology, AirGroundLinksAreStaticAndAboveThreshold) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const net::Graph g0 = topology.graph_at(0.0);
  const net::Graph g1 = topology.graph_at(43'200.0);
  // Every ground node links to the HAP at any time: 170 fiber + 31 FSO.
  EXPECT_EQ(g0.edge_count(), 201u);
  EXPECT_EQ(g1.edge_count(), 201u);
  // All LANs interconnected through the HAP.
  EXPECT_TRUE(g0.connected(model.lan_nodes(0).front(),
                           model.lan_nodes(2).front()));
}

TEST(Topology, HapLinkTransmissivityQueryable) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const net::NodeId hap = model.hap_ids().front();
  const auto eta = topology.link_transmissivity(0, hap, 0.0);
  ASSERT_TRUE(eta.has_value());
  EXPECT_GT(*eta, config.transmissivity_threshold);
  EXPECT_LT(*eta, 1.0);
}

TEST(Topology, SatelliteLinksComeAndGo) {
  const QntnConfig config;
  const NetworkModel model = core::build_space_ground_model(config, 6);
  const TopologyBuilder topology(model, config.link_policy());
  // Over a day, a 6-satellite single-plane constellation must sometimes
  // link the ground and sometimes not.
  std::size_t with_links = 0, without_links = 0;
  for (double t = 0.0; t < 86'400.0; t += 900.0) {
    const std::size_t extra = topology.links_at(t).size() - 170u;
    (extra > 0 ? with_links : without_links) += 1;
  }
  EXPECT_GT(with_links, 0u);
  EXPECT_GT(without_links, 0u);
}

TEST(Topology, InterCityGroundPairsHaveNoChannel) {
  const QntnConfig config;
  const NetworkModel model = core::build_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const net::NodeId ttu = model.lan_nodes(0).front();
  const net::NodeId epb = model.lan_nodes(1).front();
  EXPECT_FALSE(topology.link_transmissivity(ttu, epb, 0.0).has_value());
  // Intra-LAN pairs do have fiber.
  EXPECT_TRUE(topology
                  .link_transmissivity(model.lan_nodes(0)[0],
                                       model.lan_nodes(0)[1], 0.0)
                  .has_value());
}

TEST(Topology, ThresholdGatesLinkEstablishment) {
  QntnConfig strict;
  strict.transmissivity_threshold = 0.999;  // nothing FSO passes
  const NetworkModel model = core::build_air_ground_model(strict);
  const TopologyBuilder topology(model, strict.link_policy());
  // Only the shortest fiber spans survive; in particular no HAP links, so
  // the edge count drops below the ground-only full mesh.
  const net::Graph g = topology.graph_at(0.0);
  EXPECT_LT(g.edge_count(), 170u);
  for (const net::Edge& edge : g.edges()) {
    EXPECT_GE(edge.transmissivity, 0.999);
  }
}

TEST(Topology, ElevationMaskGatesHapLinks) {
  QntnConfig high_mask;
  high_mask.elevation_mask = deg_to_rad(45.0);  // HAP sits at ~22 deg
  const NetworkModel model = core::build_air_ground_model(high_mask);
  const TopologyBuilder topology(model, high_mask.link_policy());
  EXPECT_EQ(topology.graph_at(0.0).edge_count(), 170u);
}

TEST(Topology, MixedTerminalConfigsRejected) {
  const QntnConfig config;
  NetworkModel model;
  model.add_lan("A", {geo::Geodetic::from_degrees(36.0, -85.0, 0.0)},
                {1.2, 1e-7});
  model.add_lan("B", {geo::Geodetic::from_degrees(35.0, -85.0, 0.0)},
                {0.6, 1e-7});  // different aperture in the same class
  EXPECT_THROW((void)TopologyBuilder(model, config.link_policy()), PreconditionError);
}

TEST(Topology, HybridEnablesHapSatelliteLinks) {
  QntnConfig config;
  config.enable_hap_satellite = true;
  const NetworkModel model = core::build_hybrid_model(config, 6);
  const TopologyBuilder topology(model, config.link_policy());
  const net::NodeId hap = model.hap_ids().front();
  // At some point during the day a satellite passes above the HAP's mask;
  // the query must return a value then (even if below threshold).
  bool ever_visible = false;
  for (double t = 0.0; t < 86'400.0 && !ever_visible; t += 300.0) {
    for (const net::NodeId sat : model.satellite_ids()) {
      if (topology.link_transmissivity(hap, sat, t).has_value()) {
        ever_visible = true;
        break;
      }
    }
  }
  EXPECT_TRUE(ever_visible);
}

// Regression: link_transmissivity once carried its own copy of the
// kind-pair -> evaluator dispatch table (in a local that shadowed the
// evaluator() member), so the pairwise query could drift from the bulk
// links_at() enumeration. Pin the two code paths to identical values for
// every emitted link, across all link classes of the hybrid model.
TEST(Topology, PairwiseQueryAgreesWithBulkEnumeration) {
  QntnConfig config;
  config.enable_hap_satellite = true;
  const NetworkModel model = core::build_hybrid_model(config, 6);
  const TopologyBuilder topology(model, config.link_policy());
  std::size_t checked = 0;
  for (double t = 0.0; t < 86'400.0; t += 7'200.0) {
    for (const LinkRecord& link : topology.links_at(t)) {
      const auto eta = topology.link_transmissivity(link.a, link.b, t);
      ASSERT_TRUE(eta.has_value())
          << "links_at emitted " << link.a << "-" << link.b
          << " but the pairwise query denies it (t=" << t << ")";
      EXPECT_DOUBLE_EQ(*eta, link.transmissivity);
      ++checked;
    }
  }
  EXPECT_GT(checked, 1000u);  // fiber meshes alone give 170 links per epoch
}

}  // namespace
}  // namespace qntn::sim
