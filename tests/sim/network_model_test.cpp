#include "sim/network_model.hpp"

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "orbit/constellation.hpp"

namespace qntn::sim {
namespace {

channel::OpticalTerminal terminal() { return {1.2, 1e-7}; }

std::vector<geo::Geodetic> two_sites() {
  return {geo::Geodetic::from_degrees(36.0, -85.0, 0.0),
          geo::Geodetic::from_degrees(36.01, -85.0, 0.0)};
}

orbit::Ephemeris sample_ephemeris() {
  const auto elements = orbit::qntn_constellation(6);
  return orbit::Ephemeris::generate(orbit::TwoBodyPropagator(elements[0]),
                                    3600.0, 30.0);
}

TEST(NetworkModel, LanNodesGetStableSequentialIds) {
  NetworkModel model;
  const std::size_t lan0 = model.add_lan("A", two_sites(), terminal());
  const std::size_t lan1 = model.add_lan("B", two_sites(), terminal());
  EXPECT_EQ(lan0, 0u);
  EXPECT_EQ(lan1, 1u);
  EXPECT_EQ(model.node_count(), 4u);
  EXPECT_EQ(model.lan_nodes(0), (std::vector<net::NodeId>{0, 1}));
  EXPECT_EQ(model.lan_nodes(1), (std::vector<net::NodeId>{2, 3}));
  EXPECT_EQ(model.lan_name(1), "B");
  EXPECT_EQ(model.node(2).lan, 1u);
  EXPECT_EQ(model.node(2).kind, NodeKind::Ground);
}

TEST(NetworkModel, HapAndSatelliteRegistration) {
  NetworkModel model;
  model.add_lan("A", two_sites(), terminal());
  const net::NodeId hap = model.add_hap(
      "H", geo::Geodetic::from_degrees(35.7, -85.1, 30'000.0), {0.3, 1e-7});
  const net::NodeId sat = model.add_satellite("S", sample_ephemeris(), terminal());
  EXPECT_EQ(model.hap_ids(), std::vector<net::NodeId>{hap});
  EXPECT_EQ(model.satellite_ids(), std::vector<net::NodeId>{sat});
  EXPECT_EQ(model.node(hap).kind, NodeKind::Hap);
  EXPECT_EQ(model.node(sat).kind, NodeKind::Satellite);
}

TEST(NetworkModel, IdStabilityOrderingEnforced) {
  NetworkModel model;
  model.add_lan("A", two_sites(), terminal());
  model.add_satellite("S", sample_ephemeris(), terminal());
  // LANs and HAPs must come before satellites.
  EXPECT_THROW((void)model.add_lan("B", two_sites(), terminal()), PreconditionError);
  EXPECT_THROW((void)
      model.add_hap("H", geo::Geodetic::from_degrees(35.0, -85.0, 3e4), terminal()),
      PreconditionError);
}

TEST(NetworkModel, FixedNodesDoNotMove) {
  NetworkModel model;
  model.add_lan("A", two_sites(), terminal());
  const channel::Endpoint e0 = model.endpoint_at(0, 0.0);
  const channel::Endpoint e1 = model.endpoint_at(0, 50'000.0);
  EXPECT_DOUBLE_EQ(distance(e0.ecef, e1.ecef), 0.0);
}

TEST(NetworkModel, SatellitesMoveAlongEphemeris) {
  NetworkModel model;
  model.add_lan("A", two_sites(), terminal());
  const net::NodeId sat = model.add_satellite("S", sample_ephemeris(), terminal());
  const channel::Endpoint e0 = model.endpoint_at(sat, 0.0);
  const channel::Endpoint e1 = model.endpoint_at(sat, 600.0);
  // 10 minutes of LEO motion is thousands of kilometres.
  EXPECT_GT(distance(e0.ecef, e1.ecef), 1e6);
  // Satellite altitude near 500 km.
  EXPECT_NEAR(e0.geodetic.altitude, 500e3, 25e3);
}

TEST(NetworkModel, RejectsEmptyLan) {
  NetworkModel model;
  EXPECT_THROW((void)model.add_lan("empty", {}, terminal()), PreconditionError);
}

}  // namespace
}  // namespace qntn::sim
