#include "sim/handover.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"

namespace qntn::sim {
namespace {

using core::QntnConfig;

TEST(Handover, HapBridgesEveryPairWithoutHandover) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = a + 1; b < 3; ++b) {
      const HandoverStats stats =
          analyze_handovers(model, topology, a, b, 14'400.0, 300.0);
      EXPECT_DOUBLE_EQ(stats.bridged_fraction(), 1.0);
      EXPECT_EQ(stats.handovers, 0u);
      EXPECT_EQ(stats.session_length.count(), 1u);  // one uninterrupted run
    }
  }
}

TEST(Handover, BridgingRelayIdentifiesTheHap) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  const auto relay = bridging_relay(model, topology.graph_at(0.0), 0, 1);
  ASSERT_TRUE(relay.has_value());
  EXPECT_EQ(*relay, model.hap_ids().front());
}

TEST(Handover, GroundOnlyNetworkHasNoBridge) {
  const QntnConfig config;
  const NetworkModel model = core::build_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  EXPECT_FALSE(bridging_relay(model, topology.graph_at(0.0), 0, 2).has_value());
  const HandoverStats stats =
      analyze_handovers(model, topology, 0, 2, 3'600.0, 600.0);
  EXPECT_DOUBLE_EQ(stats.bridged_fraction(), 0.0);
  EXPECT_EQ(stats.session_length.count(), 0u);
}

TEST(Handover, SatelliteSessionsAreShortAndHandOver) {
  const QntnConfig config;
  const NetworkModel model = core::build_space_ground_model(config, 108);
  const TopologyBuilder topology(model, config.link_policy());
  const HandoverStats stats =
      analyze_handovers(model, topology, 0, 1, 86'400.0, 60.0);
  EXPECT_GT(stats.bridged_fraction(), 0.3);
  EXPECT_LT(stats.bridged_fraction(), 0.9);
  // Dozens of distinct sessions per day, each a few minutes (pass scale).
  EXPECT_GT(stats.session_length.count(), 20u);
  EXPECT_LT(stats.session_length.mean(), 15.0 * 60.0);
  EXPECT_GT(stats.session_length.mean(), 30.0);
}

TEST(Handover, HybridPrefersItsAlwaysOnHap) {
  QntnConfig config;
  const NetworkModel model = core::build_hybrid_model(config, 36);
  const TopologyBuilder topology(model, config.link_policy());
  const HandoverStats stats =
      analyze_handovers(model, topology, 0, 2, 14'400.0, 300.0);
  EXPECT_DOUBLE_EQ(stats.bridged_fraction(), 1.0);
  // The HAP's ~0.93 links beat satellite links only below ~0.93; handovers
  // happen only when a satellite pass is strictly better on both legs —
  // rare, so sessions stay long.
  EXPECT_GT(stats.session_length.mean(), 600.0);
}

TEST(Handover, RejectsBadArguments) {
  const QntnConfig config;
  const NetworkModel model = core::build_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  EXPECT_THROW((void)bridging_relay(model, topology.graph_at(0.0), 0, 0),
               PreconditionError);
  EXPECT_THROW((void)bridging_relay(model, topology.graph_at(0.0), 0, 7),
               PreconditionError);
  EXPECT_THROW((void)analyze_handovers(model, topology, 0, 1, 0.0, 60.0),
               PreconditionError);
}

}  // namespace
}  // namespace qntn::sim
