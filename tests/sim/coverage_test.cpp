#include "sim/coverage.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"

#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"

namespace qntn::sim {
namespace {

using core::QntnConfig;

TEST(Coverage, AirGroundCoversTheWholeDay) {
  const QntnConfig config;
  const NetworkModel model = core::build_air_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  CoverageOptions options;
  options.duration = 7200.0;  // shortened: the topology is static anyway
  options.step = 60.0;
  const CoverageResult result = analyze_coverage(model, topology, options);
  EXPECT_DOUBLE_EQ(result.percent, 100.0);
  EXPECT_DOUBLE_EQ(result.covered_s, 7200.0);
  EXPECT_EQ(result.intervals.episode_count(), 1u);
}

TEST(Coverage, GroundOnlyNeverCovers) {
  const QntnConfig config;
  const NetworkModel model = core::build_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  CoverageOptions options;
  options.duration = 3600.0;
  options.step = 300.0;
  const CoverageResult result = analyze_coverage(model, topology, options);
  EXPECT_DOUBLE_EQ(result.percent, 0.0);
  EXPECT_EQ(result.intervals.episode_count(), 0u);
}

TEST(Coverage, AllLansConnectedSemantics) {
  const QntnConfig config;
  const NetworkModel model = core::build_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  net::Graph g = topology.graph_at(0.0);
  EXPECT_FALSE(all_lans_connected(model, g));
  // Stitch the LANs together with two synthetic bridges.
  g.add_edge(model.lan_nodes(0).front(), model.lan_nodes(1).front(), 1.0);
  EXPECT_FALSE(all_lans_connected(model, g));  // third LAN still isolated
  g.add_edge(model.lan_nodes(1).front(), model.lan_nodes(2).front(), 1.0);
  EXPECT_TRUE(all_lans_connected(model, g));
}

TEST(Coverage, StepSeriesMatchesIntervalTotal) {
  const QntnConfig config;
  const NetworkModel model = core::build_space_ground_model(config, 12);
  const TopologyBuilder topology(model, config.link_policy());
  CoverageOptions options;
  options.duration = 14'400.0;
  options.step = 120.0;
  const CoverageResult result = analyze_coverage(model, topology, options);
  std::size_t active = 0;
  for (const auto flag : result.step_connected) active += flag;
  EXPECT_EQ(result.step_connected.size(), 120u);
  EXPECT_NEAR(result.covered_s, static_cast<double>(active) * 120.0, 1e-9);
  EXPECT_NEAR(result.percent,
              100.0 * result.covered_s / options.duration, 1e-12);
}

TEST(Coverage, RejectsBadOptions) {
  const QntnConfig config;
  const NetworkModel model = core::build_ground_model(config);
  const TopologyBuilder topology(model, config.link_policy());
  CoverageOptions bad;
  bad.duration = 0.0;
  EXPECT_THROW((void)analyze_coverage(model, topology, bad), PreconditionError);
}

TEST(Coverage, ParallelEngineMatchesSerialLoop) {
  // The per-epoch parallel engine must reproduce the serial per-step loop
  // bit for bit: identical flags, identical merged intervals.
  const QntnConfig cfg;
  QntnConfig plan_cfg = cfg;
  plan_cfg.topology_mode = core::TopologyMode::ContactPlan;
  const NetworkModel model = core::build_space_ground_model(plan_cfg, 12);
  const core::Topology topology = core::make_topology(plan_cfg, model);

  CoverageOptions serial;
  serial.duration = 14'400.0;
  serial.step = 30.0;
  const CoverageResult expected =
      analyze_coverage(model, topology.provider(), serial);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    CoverageOptions parallel = serial;
    parallel.pool = &pool;
    const CoverageResult actual =
        analyze_coverage(model, topology.provider(), parallel);
    EXPECT_EQ(actual.step_connected, expected.step_connected);
    EXPECT_EQ(actual.covered_s, expected.covered_s);
    EXPECT_EQ(actual.percent, expected.percent);
    EXPECT_EQ(actual.intervals.episode_count(),
              expected.intervals.episode_count());
  }
}

TEST(Coverage, PoolWithoutEpochPartitionStaysSerial) {
  // TopologyBuilder has no epoch partition: handing a pool must change
  // nothing (the engine requires epoch_count() > 0).
  const QntnConfig config;
  const NetworkModel model = core::build_space_ground_model(config, 6);
  const TopologyBuilder topology(model, config.link_policy());
  CoverageOptions options;
  options.duration = 3'600.0;
  options.step = 60.0;
  const CoverageResult serial = analyze_coverage(model, topology, options);
  ThreadPool pool(4);
  options.pool = &pool;
  const CoverageResult pooled = analyze_coverage(model, topology, options);
  EXPECT_EQ(pooled.step_connected, serial.step_connected);
  EXPECT_EQ(pooled.covered_s, serial.covered_s);
}

}  // namespace
}  // namespace qntn::sim
