#include "quantum/swapping.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "quantum/channels.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/state.hpp"

namespace qntn::quantum {
namespace {

TEST(Swap, TwoPerfectPairsYieldAPerfectPair) {
  const Matrix perfect = pure_density(bell_state(BellState::PhiPlus));
  const SwapResult result = entanglement_swap(perfect, perfect);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
  EXPECT_LT(result.state.max_abs_diff(perfect), 1e-9);
}

TEST(Swap, OutputIsAValidState) {
  const SwapResult result =
      entanglement_swap(transmit_bell_half(0.8), werner_state(0.9));
  EXPECT_TRUE(is_density_matrix(result.state, 1e-8));
}

TEST(Swap, WernerPairsComposeMultiplicatively) {
  // Known result: swapping Werner(w1) with Werner(w2) gives Werner(w1*w2).
  for (const auto& [w1, w2] : {std::pair{0.9, 0.8}, {1.0, 0.7}, {0.6, 0.6}}) {
    const SwapResult result =
        entanglement_swap(werner_state(w1), werner_state(w2));
    EXPECT_LT(result.state.max_abs_diff(werner_state(w1 * w2)), 1e-9)
        << w1 << " x " << w2;
  }
}

TEST(Swap, SymmetricInItsArguments) {
  const Matrix a = transmit_bell_half(0.75);
  const Matrix b = werner_state(0.85);
  const SwapResult ab = entanglement_swap(a, b);
  const SwapResult ba = entanglement_swap(b, a);
  EXPECT_NEAR(ab.fidelity, ba.fidelity, 1e-9);
}

TEST(Swap, DampedPairsMatchTheProductShortcutExactly) {
  // The simulator's shortcut treats a two-hop path as AD(eta1*eta2).
  // Swapping two damped pairs yields a *different state* (the lost
  // population lands symmetrically on |01> and |10> instead of only |10>),
  // but its PhiPlus fidelity equals the shortcut's exactly — the shortcut
  // is fidelity-exact, not merely approximate.
  for (const auto& [e1, e2] : {std::pair{0.9, 0.9}, {0.8, 0.95}, {0.7, 0.7},
                               {0.5, 0.6}}) {
    const SwapResult swapped = swap_damped_chain({e1, e2});
    const double shortcut = bell_fidelity_after_damping(
        e1 * e2, FidelityConvention::Uhlmann);
    EXPECT_NEAR(swapped.fidelity, shortcut, 1e-12) << e1 << " x " << e2;
    // ...while the states themselves differ unless a hop is lossless.
    const Matrix direct = transmit_bell_half(e1 * e2);
    EXPECT_GT(swapped.state.max_abs_diff(direct), 1e-3);
  }
}

TEST(Swap, FidelityDegradesWithEveryHop) {
  double previous = 1.0;
  for (std::size_t hops = 1; hops <= 4; ++hops) {
    const SwapResult result =
        swap_damped_chain(std::vector<double>(hops, 0.9));
    EXPECT_LT(result.fidelity, previous + 1e-12) << hops;
    previous = result.fidelity;
  }
}

TEST(Swap, SingleHopChainIsIdentity) {
  const SwapResult result = swap_damped_chain({0.8});
  EXPECT_NEAR(result.fidelity,
              bell_fidelity_after_damping(0.8, FidelityConvention::Uhlmann),
              1e-12);
}

TEST(Swap, RejectsWrongDimensions) {
  EXPECT_THROW((void)entanglement_swap(Matrix::identity(2), werner_state(0.9)),
               PreconditionError);
  EXPECT_THROW((void)swap_chain({}), PreconditionError);
  EXPECT_THROW((void)swap_damped_chain({}), PreconditionError);
}

}  // namespace
}  // namespace qntn::quantum
