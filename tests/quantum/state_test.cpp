#include "quantum/state.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace qntn::quantum {
namespace {

TEST(State, QubitCount) {
  EXPECT_EQ(qubit_count(Matrix::identity(2)), 1u);
  EXPECT_EQ(qubit_count(Matrix::identity(4)), 2u);
  EXPECT_EQ(qubit_count(Matrix::identity(8)), 3u);
  EXPECT_THROW((void)qubit_count(Matrix::identity(3)), PreconditionError);
  EXPECT_THROW((void)qubit_count(Matrix::identity(1)), PreconditionError);
}

TEST(State, BasisStates) {
  const ColumnVector v = basis_state(2, 3);  // |11>
  EXPECT_EQ(v.rows(), 4u);
  EXPECT_EQ(v(3, 0), Complex(1.0, 0.0));
  EXPECT_EQ(v(0, 0), Complex(0.0, 0.0));
  EXPECT_THROW((void)basis_state(2, 4), PreconditionError);
}

TEST(State, BellStatesAreNormalizedAndOrthogonal) {
  const BellState all[] = {BellState::PhiPlus, BellState::PhiMinus,
                           BellState::PsiPlus, BellState::PsiMinus};
  for (const BellState a : all) {
    const ColumnVector va = bell_state(a);
    EXPECT_NEAR(va.frobenius_norm(), 1.0, 1e-15);
    for (const BellState b : all) {
      const Matrix ip = va.dagger() * bell_state(b);
      EXPECT_NEAR(std::abs(ip(0, 0)), a == b ? 1.0 : 0.0, 1e-15);
    }
  }
}

TEST(State, PureDensityProperties) {
  const Matrix rho = pure_density(bell_state(BellState::PhiPlus));
  EXPECT_TRUE(is_density_matrix(rho));
  EXPECT_NEAR(purity(rho), 1.0, 1e-12);
  // Known entries of |Phi+><Phi+|.
  EXPECT_NEAR(rho(0, 0).real(), 0.5, 1e-15);
  EXPECT_NEAR(rho(0, 3).real(), 0.5, 1e-15);
  EXPECT_NEAR(rho(1, 1).real(), 0.0, 1e-15);
}

TEST(State, PureDensityNormalizesInput) {
  const ColumnVector unnormalized = column_vector({2.0, 0.0});
  const Matrix rho = pure_density(unnormalized);
  EXPECT_NEAR(rho.trace().real(), 1.0, 1e-15);
}

TEST(State, WernerFamily) {
  EXPECT_LT(werner_state(1.0).max_abs_diff(
                pure_density(bell_state(BellState::PhiPlus))),
            1e-15);
  EXPECT_LT(werner_state(0.0).max_abs_diff(maximally_mixed(2)), 1e-15);
  for (double w : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_TRUE(is_density_matrix(werner_state(w)));
  }
  EXPECT_THROW((void)werner_state(1.5), PreconditionError);
}

TEST(State, MaximallyMixedPurity) {
  EXPECT_NEAR(purity(maximally_mixed(1)), 0.5, 1e-15);
  EXPECT_NEAR(purity(maximally_mixed(2)), 0.25, 1e-15);
}

TEST(State, PartialTraceOfBellPairIsMaximallyMixed) {
  const Matrix rho = pure_density(bell_state(BellState::PhiPlus));
  for (std::size_t q : {0u, 1u}) {
    const Matrix reduced = partial_trace_qubit(rho, q);
    EXPECT_LT(reduced.max_abs_diff(maximally_mixed(1)), 1e-15);
  }
}

TEST(State, PartialTraceOfProductState) {
  // |0><0| ⊗ |1><1|: tracing qubit 1 (LSB side) leaves |0><0|.
  const Matrix rho0 = pure_density(basis_state(1, 0));
  const Matrix rho1 = pure_density(basis_state(1, 1));
  const Matrix product = rho0.kron(rho1);
  EXPECT_LT(partial_trace_qubit(product, 1).max_abs_diff(rho0), 1e-15);
  EXPECT_LT(partial_trace_qubit(product, 0).max_abs_diff(rho1), 1e-15);
}

TEST(State, PartialTracePreservesTrace) {
  const Matrix rho = werner_state(0.37);
  EXPECT_NEAR(partial_trace_qubit(rho, 0).trace().real(), 1.0, 1e-12);
}

TEST(State, PartialTransposeIsInvolution) {
  const Matrix rho = werner_state(0.6);
  const Matrix ptpt = partial_transpose_qubit(partial_transpose_qubit(rho, 1), 1);
  EXPECT_LT(ptpt.max_abs_diff(rho), 1e-15);
}

TEST(State, PartialTransposeOfProductStateIsHarmless) {
  const Matrix rho = pure_density(basis_state(1, 0)).kron(maximally_mixed(1));
  // Product states stay PSD under partial transposition.
  EXPECT_TRUE(is_density_matrix(partial_transpose_qubit(rho, 1)));
}

TEST(State, IsDensityMatrixRejectsBadInputs) {
  EXPECT_FALSE(is_density_matrix(Matrix::identity(4)));  // trace 4
  Matrix not_psd{{1.5, 0.0}, {0.0, -0.5}};
  EXPECT_FALSE(is_density_matrix(not_psd));
  Matrix not_herm{{0.5, 1.0}, {0.0, 0.5}};
  EXPECT_FALSE(is_density_matrix(not_herm));
}

TEST(State, ThreeQubitPartialTrace) {
  // GHZ state: tracing any qubit leaves a classical mixture of |00>,|11>.
  ColumnVector ghz(8, 1);
  ghz(0, 0) = 1.0 / std::sqrt(2.0);
  ghz(7, 0) = 1.0 / std::sqrt(2.0);
  const Matrix rho = pure_density(ghz);
  const Matrix reduced = partial_trace_qubit(rho, 0);
  EXPECT_EQ(reduced.rows(), 4u);
  EXPECT_NEAR(reduced(0, 0).real(), 0.5, 1e-15);
  EXPECT_NEAR(reduced(3, 3).real(), 0.5, 1e-15);
  EXPECT_NEAR(std::abs(reduced(0, 3)), 0.0, 1e-15);  // coherence lost
}

}  // namespace
}  // namespace qntn::quantum
