#include "quantum/memory.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "quantum/channels.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/state.hpp"

namespace qntn::quantum {
namespace {

TEST(Memory, NoTimeNoDecoherence) {
  const MemoryModel memory;
  EXPECT_DOUBLE_EQ(memory.relaxation_survival(0.0), 1.0);
  EXPECT_DOUBLE_EQ(memory.dephasing_probability(0.0), 0.0);
  const Matrix rho = transmit_bell_half(0.8);
  EXPECT_LT(memory.store(rho, 1, 0.0).max_abs_diff(rho), 1e-12);
}

TEST(Memory, RelaxationFollowsT1) {
  MemoryModel memory;
  memory.t1 = 2.0;
  memory.t2 = 1.0;
  EXPECT_NEAR(memory.relaxation_survival(2.0), std::exp(-1.0), 1e-12);
}

TEST(Memory, T2LimitedDephasing) {
  MemoryModel memory;
  memory.t1 = 1.0;
  memory.t2 = 0.5;
  EXPECT_GT(memory.dephasing_probability(0.2), 0.0);
  // At the T2 = 2 T1 limit all dephasing comes from relaxation.
  MemoryModel limit;
  limit.t1 = 1.0;
  limit.t2 = 2.0;
  EXPECT_DOUBLE_EQ(limit.dephasing_probability(5.0), 0.0);
}

TEST(Memory, StoredStateStaysPhysical) {
  const MemoryModel memory;
  Matrix rho = transmit_bell_half(0.9);
  for (double t : {0.01, 0.1, 1.0, 5.0}) {
    rho = memory.store(transmit_bell_half(0.9), 1, t);
    EXPECT_TRUE(is_density_matrix(rho, 1e-9)) << t;
  }
}

TEST(Memory, ClosedFormMatchesDensityMatrixPath) {
  const MemoryModel memory;
  for (double eta : {0.6, 0.8, 0.95}) {
    for (double t : {0.0, 0.05, 0.3, 1.0}) {
      const Matrix rho = memory.store(transmit_bell_half(eta), 1, t);
      const double direct = fidelity_to_pure(
          rho, bell_state(BellState::PhiPlus), FidelityConvention::Uhlmann);
      EXPECT_NEAR(memory.stored_pair_fidelity(eta, t), direct, 1e-10)
          << "eta=" << eta << " t=" << t;
    }
  }
}

TEST(Memory, FidelityMonotoneDecreasingInStorageTime) {
  const MemoryModel memory;
  double previous = 1.1;
  for (double t = 0.0; t <= 2.0; t += 0.1) {
    const double f = memory.stored_pair_fidelity(0.9, t);
    EXPECT_LT(f, previous);
    previous = f;
  }
}

TEST(Memory, LongStorageApproachesClassicalFloor) {
  const MemoryModel memory;
  // Fully decohered + relaxed: the state drifts towards |00><00| whose
  // PhiPlus overlap is 1/2 -> F_uhlmann -> sqrt(1/2) ~ 0.707... but with
  // eta damping the |10> component also dies; pin the asymptote.
  const double f_inf = memory.stored_pair_fidelity(0.9, 1e6);
  EXPECT_NEAR(f_inf, std::sqrt(0.25), 1e-6);
}

TEST(Memory, RejectsUnphysicalParameters) {
  MemoryModel bad;
  bad.t1 = 1.0;
  bad.t2 = 3.0;  // > 2 T1
  EXPECT_THROW((void)bad.relaxation_survival(1.0), PreconditionError);
  MemoryModel negative;
  negative.t1 = -1.0;
  EXPECT_THROW((void)negative.dephasing_probability(1.0), PreconditionError);
  const MemoryModel ok;
  EXPECT_THROW((void)ok.relaxation_survival(-0.1), PreconditionError);
}

TEST(Memory, ValidateCatchesUnphysicalPairsAtConstruction) {
  // Regression: T2 > 2 T1 used to slip through until the first
  // relaxation_survival call deep inside a scenario; validate()/checked()
  // now fail at the construction/config boundary with a message naming the
  // constraint.
  EXPECT_THROW((void)MemoryModel::checked(1.0, 3.0), Error);
  try {
    (void)MemoryModel::checked(1.0, 3.0);
    FAIL() << "checked(1, 3) must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("T2"), std::string::npos)
        << "error should name the violated constraint: " << e.what();
  }
  EXPECT_THROW((void)MemoryModel::checked(0.0, 0.5), Error);
  EXPECT_THROW((void)MemoryModel::checked(1.0, 0.0), Error);
  // The boundary T2 = 2 T1 (all dephasing from relaxation) is physical.
  const MemoryModel limit = MemoryModel::checked(1.0, 2.0);
  EXPECT_DOUBLE_EQ(limit.t2, 2.0);
  MemoryModel ok;
  ok.validate();  // defaults are physical
}

}  // namespace
}  // namespace qntn::quantum
