#include "quantum/teleportation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "quantum/channels.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/state.hpp"

namespace qntn::quantum {
namespace {

TEST(Teleport, PerfectPairTeleportsPerfectly) {
  const Matrix pair = pure_density(bell_state(BellState::PhiPlus));
  const double r = 1.0 / std::sqrt(2.0);
  const Complex i{0.0, 1.0};
  for (const ColumnVector& psi :
       {column_vector({1.0, 0.0}), column_vector({r, r}),
        column_vector({r, i * r}), column_vector({0.6, 0.8})}) {
    EXPECT_NEAR(teleportation_fidelity(pair, psi), 1.0, 1e-10);
    // Output equals input exactly.
    EXPECT_LT(teleport(pair, psi).max_abs_diff(pure_density(psi)), 1e-10);
  }
  EXPECT_NEAR(average_teleportation_fidelity(pair), 1.0, 1e-10);
}

TEST(Teleport, OutputsAreValidStates) {
  const Matrix pair = transmit_bell_half(0.7);
  const Matrix out = teleport(pair, column_vector({0.8, 0.6}));
  EXPECT_TRUE(is_density_matrix(out, 1e-9));
}

/// Textbook result: Werner resource of (Jozsa) fidelity F gives average
/// teleportation fidelity (2F + 1)/3.
class WernerTeleportation : public ::testing::TestWithParam<double> {};

TEST_P(WernerTeleportation, AverageFidelityClosedForm) {
  const double w = GetParam();
  const double f = w + (1.0 - w) / 4.0;
  const double expected = (2.0 * f + 1.0) / 3.0;
  EXPECT_NEAR(average_teleportation_fidelity(werner_state(w)), expected, 1e-10)
      << "w=" << w;
}

INSTANTIATE_TEST_SUITE_P(Grid, WernerTeleportation,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 0.9, 1.0));

TEST(Teleport, ClassicalLimitAtZeroEntanglement) {
  // The maximally mixed resource teleports nothing: output is independent
  // of the input, average fidelity = 1/2 (below the 2/3 classical bound,
  // since no classical strategy is even attempted).
  EXPECT_NEAR(average_teleportation_fidelity(maximally_mixed(2)), 0.5, 1e-10);
  // Werner at the separability edge (w = 1/3, F = 1/2) reaches exactly the
  // classical limit 2/3.
  EXPECT_NEAR(average_teleportation_fidelity(werner_state(1.0 / 3.0)),
              kClassicalTeleportationLimit, 1e-10);
}

TEST(Teleport, DampedPairsMonotoneInTransmissivity) {
  double prev = 0.0;
  for (double eta : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const double f = average_teleportation_fidelity(transmit_bell_half(eta));
    EXPECT_GT(f, prev) << eta;
    prev = f;
  }
  EXPECT_NEAR(prev, 1.0, 1e-10);
}

TEST(Teleport, QntnOperatingPointsBeatTheClassicalLimit) {
  // The paper's threshold guarantees eta_path >= 0.49 on any served 2-hop
  // relay; even that floor teleports better than any classical strategy.
  EXPECT_GT(average_teleportation_fidelity(transmit_bell_half(0.49)),
            kClassicalTeleportationLimit);
  // Typical air-ground path (eta ~ 0.87).
  EXPECT_GT(average_teleportation_fidelity(transmit_bell_half(0.87)), 0.9);
}

TEST(Teleport, RejectsBadInputs) {
  EXPECT_THROW((void)teleport(Matrix::identity(2), column_vector({1.0, 0.0})),
               PreconditionError);
  EXPECT_THROW(
      (void)teleport(werner_state(0.9), column_vector({1.0, 0.0, 0.0, 0.0})),
      PreconditionError);
}

}  // namespace
}  // namespace qntn::quantum
