#include "quantum/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace qntn::quantum {
namespace {

const Complex kI{0.0, 1.0};

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.is_square());
  m(1, 2) = 5.0;
  EXPECT_EQ(m(1, 2), Complex(5.0, 0.0));
  EXPECT_EQ(m(0, 0), Complex(0.0, 0.0));
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, kI}};
  EXPECT_EQ(m(0, 1), Complex(2.0, 0.0));
  EXPECT_EQ(m(1, 1), kI);
  EXPECT_THROW((void)(Matrix{{1.0}, {1.0, 2.0}}), PreconditionError);
}

TEST(Matrix, IdentityAndTrace) {
  const Matrix id = Matrix::identity(3);
  EXPECT_EQ(id.trace(), Complex(3.0, 0.0));
  EXPECT_TRUE(id.is_hermitian());
  EXPECT_TRUE(id.is_unitary());
  EXPECT_THROW((void)Matrix(2, 3).trace(), PreconditionError);
}

TEST(Matrix, AdditionSubtractionScaling) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  const Matrix sum = a + b;
  EXPECT_EQ(sum(0, 0), Complex(5.0, 0.0));
  EXPECT_EQ(sum(1, 1), Complex(5.0, 0.0));
  const Matrix diff = a - b;
  EXPECT_EQ(diff(0, 0), Complex(-3.0, 0.0));
  const Matrix scaled = a * Complex(2.0, 0.0);
  EXPECT_EQ(scaled(1, 0), Complex(6.0, 0.0));
  EXPECT_THROW((void)(a + Matrix(3, 3)), PreconditionError);
}

TEST(Matrix, ProductAgainstKnownResult) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};  // Pauli X
  const Matrix ab = a * b;
  EXPECT_EQ(ab(0, 0), Complex(2.0, 0.0));
  EXPECT_EQ(ab(0, 1), Complex(1.0, 0.0));
  EXPECT_EQ(ab(1, 0), Complex(4.0, 0.0));
  EXPECT_EQ(ab(1, 1), Complex(3.0, 0.0));
  EXPECT_THROW((void)(a * Matrix(3, 3)), PreconditionError);
}

TEST(Matrix, DaggerConjugatesAndTransposes) {
  const Matrix m{{1.0, kI}, {2.0 * kI, 3.0}};
  const Matrix d = m.dagger();
  EXPECT_EQ(d(0, 1), Complex(0.0, -2.0));
  EXPECT_EQ(d(1, 0), Complex(0.0, -1.0));
  EXPECT_EQ(d(1, 1), Complex(3.0, 0.0));
}

TEST(Matrix, KroneckerProduct) {
  const Matrix x{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix id = Matrix::identity(2);
  const Matrix xi = x.kron(id);
  EXPECT_EQ(xi.rows(), 4u);
  // X ⊗ I swaps the two 2x2 blocks.
  EXPECT_EQ(xi(0, 2), Complex(1.0, 0.0));
  EXPECT_EQ(xi(1, 3), Complex(1.0, 0.0));
  EXPECT_EQ(xi(0, 0), Complex(0.0, 0.0));
  // Mixed-product property: (A⊗B)(C⊗D) = (AC)⊗(BD).
  const Matrix a{{1.0, 2.0}, {0.0, 1.0}};
  const Matrix b{{0.0, kI}, {1.0, 0.0}};
  const Matrix lhs = a.kron(b) * a.kron(b);
  const Matrix rhs = (a * a).kron(b * b);
  EXPECT_LT(lhs.max_abs_diff(rhs), 1e-14);
}

TEST(Matrix, HermitianAndUnitaryPredicates) {
  const Matrix y{{0.0, -kI}, {kI, 0.0}};  // Pauli Y: Hermitian and unitary
  EXPECT_TRUE(y.is_hermitian());
  EXPECT_TRUE(y.is_unitary());
  const Matrix not_h{{0.0, 1.0}, {2.0, 0.0}};
  EXPECT_FALSE(not_h.is_hermitian());
  EXPECT_FALSE(Matrix(2, 3).is_hermitian());
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix m{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(Matrix, OuterProductOfVectors) {
  const ColumnVector v = column_vector({1.0, kI});
  const Matrix p = outer(v, v);
  EXPECT_EQ(p(0, 0), Complex(1.0, 0.0));
  EXPECT_EQ(p(0, 1), Complex(0.0, -1.0));  // 1 * conj(i)
  EXPECT_EQ(p(1, 0), kI);
  EXPECT_TRUE(p.is_hermitian());
}

}  // namespace
}  // namespace qntn::quantum
