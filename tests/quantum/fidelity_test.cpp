#include "quantum/fidelity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "quantum/channels.hpp"
#include "quantum/state.hpp"

namespace qntn::quantum {
namespace {

TEST(Fidelity, IdenticalStatesGiveOne) {
  const Matrix rho = werner_state(0.7);
  for (const auto conv : {FidelityConvention::Jozsa, FidelityConvention::Uhlmann}) {
    EXPECT_NEAR(fidelity(rho, rho, conv), 1.0, 1e-9);
  }
}

TEST(Fidelity, OrthogonalPureStatesGiveZero) {
  const Matrix a = pure_density(bell_state(BellState::PhiPlus));
  const Matrix b = pure_density(bell_state(BellState::PsiMinus));
  EXPECT_NEAR(fidelity(a, b, FidelityConvention::Jozsa), 0.0, 1e-9);
}

TEST(Fidelity, SymmetricInArguments) {
  const Matrix a = werner_state(0.9);
  const Matrix b = werner_state(0.3);
  EXPECT_NEAR(fidelity(a, b, FidelityConvention::Uhlmann),
              fidelity(b, a, FidelityConvention::Uhlmann), 1e-9);
}

TEST(Fidelity, PureVsMixedClosedForm) {
  // F_jozsa(|psi>, rho) = <psi|rho|psi>; for Werner w against PhiPlus this
  // is w + (1-w)/4.
  const ColumnVector psi = bell_state(BellState::PhiPlus);
  for (double w : {0.0, 0.4, 0.8, 1.0}) {
    const Matrix rho = werner_state(w);
    const double expected = w + (1.0 - w) / 4.0;
    EXPECT_NEAR(fidelity_to_pure(rho, psi, FidelityConvention::Jozsa), expected,
                1e-12);
    EXPECT_NEAR(fidelity(rho, pure_density(psi), FidelityConvention::Jozsa),
                expected, 1e-9);
  }
}

TEST(Fidelity, UhlmannIsSquareRootOfJozsa) {
  const Matrix a = werner_state(0.85);
  const Matrix b = werner_state(0.35);
  const double jozsa = fidelity(a, b, FidelityConvention::Jozsa);
  const double uhlmann = fidelity(a, b, FidelityConvention::Uhlmann);
  EXPECT_NEAR(uhlmann * uhlmann, jozsa, 1e-9);
}

/// The paper's Fig. 5 relationship, full pipeline vs closed form.
class DampedBellFidelity : public ::testing::TestWithParam<double> {};

TEST_P(DampedBellFidelity, MatrixPipelineMatchesClosedForm) {
  const double eta = GetParam();
  const Matrix rho = transmit_bell_half(eta);
  const ColumnVector ideal = bell_state(BellState::PhiPlus);
  for (const auto conv : {FidelityConvention::Jozsa, FidelityConvention::Uhlmann}) {
    const double via_matrix = fidelity_to_pure(rho, ideal, conv);
    const double via_general = fidelity(rho, pure_density(ideal), conv);
    const double closed = bell_fidelity_after_damping(eta, conv);
    EXPECT_NEAR(via_matrix, closed, 1e-9) << "eta=" << eta;
    // The general path takes sqrt of near-zero eigenvalues, which amplifies
    // the Jacobi residual; ~1e-8 absolute is its double-precision accuracy.
    EXPECT_NEAR(via_general, closed, 5e-8) << "eta=" << eta;
  }
}

INSTANTIATE_TEST_SUITE_P(EtaGrid, DampedBellFidelity,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.7, 0.8,
                                           0.9, 0.99, 1.0));

TEST(Fidelity, PaperOperatingPoints) {
  // The paper's Fig. 5 reading: eta = 0.7 gives > 90% fidelity. True under
  // the Uhlmann convention (0.918), false under Jozsa (0.843) — the
  // discrepancy documented in DESIGN.md §1.
  EXPECT_GT(bell_fidelity_after_damping(0.7, FidelityConvention::Uhlmann), 0.9);
  EXPECT_LT(bell_fidelity_after_damping(0.7, FidelityConvention::Jozsa), 0.9);
  EXPECT_NEAR(bell_fidelity_after_damping(0.7, FidelityConvention::Uhlmann),
              (1.0 + std::sqrt(0.7)) / 2.0, 1e-15);
}

TEST(Fidelity, MonotoneIncreasingInTransmissivity) {
  double prev = -1.0;
  for (double eta = 0.0; eta <= 1.0; eta += 0.01) {
    const double f =
        bell_fidelity_after_damping(eta, FidelityConvention::Uhlmann);
    EXPECT_GT(f, prev);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(
      bell_fidelity_after_damping(1.0, FidelityConvention::Uhlmann), 1.0);
  EXPECT_DOUBLE_EQ(
      bell_fidelity_after_damping(0.0, FidelityConvention::Uhlmann), 0.5);
}

TEST(TraceDistance, BasicProperties) {
  const Matrix a = pure_density(basis_state(1, 0));
  const Matrix b = pure_density(basis_state(1, 1));
  EXPECT_NEAR(trace_distance(a, b), 1.0, 1e-12);  // orthogonal pure states
  EXPECT_NEAR(trace_distance(a, a), 0.0, 1e-12);
  // Fuchs-van de Graaf: 1 - F_uhlmann <= T <= sqrt(1 - F_jozsa).
  const Matrix w1 = werner_state(0.9);
  const Matrix w2 = werner_state(0.5);
  const double t = trace_distance(w1, w2);
  const double fu = fidelity(w1, w2, FidelityConvention::Uhlmann);
  const double fj = fidelity(w1, w2, FidelityConvention::Jozsa);
  EXPECT_GE(t + 1e-9, 1.0 - fu);
  EXPECT_LE(t - 1e-9, std::sqrt(1.0 - fj));
}

TEST(Concurrence, BellStatesAreMaximallyEntangled) {
  for (const BellState s : {BellState::PhiPlus, BellState::PhiMinus,
                            BellState::PsiPlus, BellState::PsiMinus}) {
    EXPECT_NEAR(concurrence(pure_density(bell_state(s))), 1.0, 1e-9);
  }
}

TEST(Concurrence, SeparableStatesHaveZero) {
  EXPECT_NEAR(concurrence(maximally_mixed(2)), 0.0, 1e-9);
  const Matrix product =
      pure_density(basis_state(1, 0)).kron(pure_density(basis_state(1, 1)));
  EXPECT_NEAR(concurrence(product), 0.0, 1e-9);
}

TEST(Concurrence, WernerClosedForm) {
  // C(w) = max(0, (3w-1)/2) for Werner states.
  for (double w : {0.0, 0.2, 1.0 / 3.0, 0.5, 0.8, 1.0}) {
    const double expected = std::max(0.0, (3.0 * w - 1.0) / 2.0);
    EXPECT_NEAR(concurrence(werner_state(w)), expected, 1e-8) << "w=" << w;
  }
}

TEST(Negativity, DetectsEntanglement) {
  EXPECT_NEAR(negativity(pure_density(bell_state(BellState::PhiPlus))), 0.5,
              1e-9);
  EXPECT_NEAR(negativity(maximally_mixed(2)), 0.0, 1e-9);
  // Werner states are entangled iff w > 1/3.
  EXPECT_GT(negativity(werner_state(0.5)), 1e-6);
  EXPECT_NEAR(negativity(werner_state(0.3)), 0.0, 1e-9);
}

TEST(Negativity, DampedBellPairStaysEntangledForPositiveEta) {
  for (double eta : {0.1, 0.5, 0.9}) {
    EXPECT_GT(negativity(transmit_bell_half(eta)), 0.0) << eta;
  }
  // Fully damped: separable.
  EXPECT_NEAR(negativity(transmit_bell_half(0.0)), 0.0, 1e-9);
}

TEST(Fidelity, RejectsShapeMismatch) {
  EXPECT_THROW((void)
      fidelity(maximally_mixed(1), maximally_mixed(2), FidelityConvention::Jozsa),
      PreconditionError);
  EXPECT_THROW((void)bell_fidelity_after_damping(1.5, FidelityConvention::Jozsa),
               PreconditionError);
}

}  // namespace
}  // namespace qntn::quantum
