#include "quantum/purification.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "quantum/channels.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/state.hpp"

namespace qntn::quantum {
namespace {

TEST(Twirl, PreservesPhiPlusFidelityAndMakesWerner) {
  const Matrix rho = transmit_bell_half(0.7);
  const double f_before = fidelity_to_pure(rho, bell_state(BellState::PhiPlus),
                                           FidelityConvention::Jozsa);
  const Matrix twirled = twirl_to_werner(rho);
  EXPECT_TRUE(is_density_matrix(twirled));
  const double f_after = fidelity_to_pure(
      twirled, bell_state(BellState::PhiPlus), FidelityConvention::Jozsa);
  EXPECT_NEAR(f_after, f_before, 1e-12);
  // Werner form: the three non-PhiPlus Bell coefficients are equal.
  const auto coeffs = bell_diagonal_coefficients(twirled);
  EXPECT_NEAR(coeffs[1], coeffs[2], 1e-12);
  EXPECT_NEAR(coeffs[2], coeffs[3], 1e-12);
}

/// BBPSSW matrix-level protocol vs the published closed form, over a grid
/// of Werner fidelities.
class BbpsswClosedForm : public ::testing::TestWithParam<double> {};

TEST_P(BbpsswClosedForm, MatchesRecurrence) {
  const double w = GetParam();
  // Werner weight w has PhiPlus fidelity F = w + (1-w)/4.
  const double f = w + (1.0 - w) / 4.0;
  const PurificationRound round = bbpssw_round(werner_state(w));
  EXPECT_NEAR(round.success_probability, bbpssw_success(f), 1e-10);
  const double f_out = fidelity_to_pure(
      round.state, bell_state(BellState::PhiPlus), FidelityConvention::Jozsa);
  EXPECT_NEAR(f_out, bbpssw_fidelity(f), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(WernerGrid, BbpsswClosedForm,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0));

TEST(Bbpssw, ImprovesFidelityAboveOneHalf) {
  // The BBPSSW fixed points are F = 1/4... 1 with improvement for F > 1/2.
  for (double f : {0.55, 0.7, 0.9, 0.99}) {
    EXPECT_GT(bbpssw_fidelity(f), f) << f;
  }
  EXPECT_NEAR(bbpssw_fidelity(1.0), 1.0, 1e-12);
  // Below 1/2 it does not help.
  EXPECT_LT(bbpssw_fidelity(0.4), 0.5);
}

TEST(Bbpssw, PerfectInputSucceedsDeterministically) {
  const PurificationRound round =
      bbpssw_round(pure_density(bell_state(BellState::PhiPlus)));
  EXPECT_NEAR(round.success_probability, 1.0, 1e-12);
  EXPECT_NEAR(round.fidelity, 1.0, 1e-9);
}

TEST(Dejmps, PairingMattersOnDampedPairs) {
  // Amplitude-damped pairs have their smallest Bell coefficient on
  // PhiMinus, which the *plain* circuit pairs with PhiPlus; the published
  // DEJMPS rotations pair PhiPlus with PsiMinus instead and barely move
  // the fidelity here. Both facts are pinned (and optimal_bell_round must
  // therefore select the plain pairing).
  const Matrix rho = transmit_bell_half(0.7);
  const double f_in = fidelity_to_pure(rho, bell_state(BellState::PhiPlus),
                                       FidelityConvention::Uhlmann);
  const PurificationRound rotated = dejmps_round(rho);
  const PurificationRound plain = bbpssw_round(rho);
  EXPECT_NEAR(rotated.fidelity, f_in, 2e-3);  // DEJMPS ~neutral here
  EXPECT_GT(plain.fidelity, f_in + 0.03);     // plain pairing purifies
  EXPECT_TRUE(is_density_matrix(rotated.state, 1e-8));
  const PurificationRound best = optimal_bell_round(rho);
  EXPECT_DOUBLE_EQ(best.fidelity, plain.fidelity);
}

TEST(Optimal, ImprovesDampedPairFidelity) {
  for (double eta : {0.6, 0.7, 0.85}) {
    const Matrix rho = transmit_bell_half(eta);
    const double f_in = fidelity_to_pure(
        rho, bell_state(BellState::PhiPlus), FidelityConvention::Uhlmann);
    const PurificationRound round = optimal_bell_round(rho);
    EXPECT_GT(round.fidelity, f_in) << "eta=" << eta;
    EXPECT_GT(round.success_probability, 0.25);
    EXPECT_LE(round.success_probability, 1.0 + 1e-12);
  }
}

TEST(BellDiagonal, RoundTripThroughCoefficients) {
  const std::vector<double> coeffs{0.7, 0.15, 0.1, 0.05};
  const Matrix rho = bell_diagonal(coeffs);
  EXPECT_TRUE(is_density_matrix(rho));
  const auto back = bell_diagonal_coefficients(rho);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(back[i], coeffs[i], 1e-12);
  }
  EXPECT_THROW((void)bell_diagonal({0.5, 0.5}), PreconditionError);
  EXPECT_THROW((void)bell_diagonal({0.5, 0.5, 0.5, 0.5}), PreconditionError);
}

TEST(Ladder, FidelityMonotoneAndCostGrows) {
  const Matrix rho = transmit_bell_half(0.75);
  const auto steps =
      purification_ladder(rho, 4, PurificationProtocol::Optimal);
  ASSERT_GE(steps.size(), 2u);
  EXPECT_EQ(steps.front().round, 0u);
  EXPECT_DOUBLE_EQ(steps.front().expected_cost, 1.0);
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_GT(steps[i].fidelity, steps[i - 1].fidelity);
    EXPECT_GT(steps[i].expected_cost, steps[i - 1].expected_cost);
    EXPECT_GE(steps[i].expected_cost,
              2.0 * steps[i - 1].expected_cost);  // >= 2 pairs per round
  }
}

TEST(Ladder, ReachesApplicationGradeFidelityFromThresholdPair) {
  // A 2-hop QNTN relay at the 0.7 threshold yields eta = 0.49; can nested
  // purification lift it to F >= 0.99? (The extension question the bench
  // plots.)
  const Matrix rho = transmit_bell_half(0.49);
  const auto steps =
      purification_ladder(rho, 8, PurificationProtocol::Optimal);
  EXPECT_GT(steps.back().fidelity, 0.99);
}

TEST(Ladder, BbpsswVariantAlsoConverges) {
  const Matrix rho = transmit_bell_half(0.8);
  const auto steps = purification_ladder(rho, 5, PurificationProtocol::Bbpssw);
  ASSERT_GE(steps.size(), 2u);
  EXPECT_GT(steps.back().fidelity, steps.front().fidelity);
}

}  // namespace
}  // namespace qntn::quantum
