#include "quantum/gates.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "quantum/state.hpp"

namespace qntn::quantum {
namespace {

TEST(Gates, PauliAlgebra) {
  const Matrix x = pauli_x(), y = pauli_y(), z = pauli_z();
  // X^2 = Y^2 = Z^2 = I, and XY = iZ.
  EXPECT_LT((x * x).max_abs_diff(Matrix::identity(2)), 1e-15);
  EXPECT_LT((y * y).max_abs_diff(Matrix::identity(2)), 1e-15);
  EXPECT_LT((z * z).max_abs_diff(Matrix::identity(2)), 1e-15);
  EXPECT_LT((x * y).max_abs_diff(z * Complex(0.0, 1.0)), 1e-15);
  for (const Matrix& g : {x, y, z, hadamard()}) {
    EXPECT_TRUE(g.is_unitary());
    EXPECT_TRUE(g.is_hermitian());
  }
}

TEST(Gates, HadamardCreatesEqualSuperposition) {
  const Matrix rho = apply_unitary(hadamard(), pure_density(basis_state(1, 0)));
  EXPECT_NEAR(rho(0, 0).real(), 0.5, 1e-15);
  EXPECT_NEAR(rho(1, 1).real(), 0.5, 1e-15);
  EXPECT_NEAR(rho(0, 1).real(), 0.5, 1e-15);
}

TEST(Gates, PhaseAndRotationAreUnitary) {
  for (double angle : {0.0, 0.3, kPi / 2.0, kPi, 4.0}) {
    EXPECT_TRUE(phase(angle).is_unitary());
    EXPECT_TRUE(rotation_x(angle).is_unitary());
  }
  // Rx(2*pi) = -I (spinor double cover): density matrices are unchanged.
  const Matrix rho = pure_density(basis_state(1, 1));
  EXPECT_LT(apply_unitary(rotation_x(2.0 * kPi), rho).max_abs_diff(rho), 1e-12);
}

TEST(Gates, LiftSingleMatchesKron) {
  const Matrix x = pauli_x();
  const Matrix lifted = lift_single(x, 2, 0);
  EXPECT_LT(lifted.max_abs_diff(x.kron(Matrix::identity(2))), 1e-15);
  const Matrix lifted1 = lift_single(x, 2, 1);
  EXPECT_LT(lifted1.max_abs_diff(Matrix::identity(2).kron(x)), 1e-15);
  EXPECT_THROW((void)lift_single(x, 2, 2), PreconditionError);
  EXPECT_THROW((void)lift_single(Matrix::identity(4), 2, 0), PreconditionError);
}

TEST(Gates, CnotTruthTable) {
  const Matrix gate = cnot(2, 0, 1);
  EXPECT_TRUE(gate.is_unitary());
  // |00> -> |00>, |01> -> |01>, |10> -> |11>, |11> -> |10>.
  const std::size_t expected[] = {0, 1, 3, 2};
  for (std::size_t in = 0; in < 4; ++in) {
    const Matrix out = gate * basis_state(2, in);
    EXPECT_NEAR(std::abs(out(expected[in], 0)), 1.0, 1e-15) << in;
  }
}

TEST(Gates, CnotReversedControl) {
  const Matrix gate = cnot(2, 1, 0);  // control = LSB qubit
  // |01> -> |11>, |11> -> |01>.
  EXPECT_NEAR(std::abs((gate * basis_state(2, 1))(3, 0)), 1.0, 1e-15);
  EXPECT_NEAR(std::abs((gate * basis_state(2, 3))(1, 0)), 1.0, 1e-15);
  EXPECT_THROW((void)cnot(2, 0, 0), PreconditionError);
}

TEST(Gates, HadamardCnotMakesBellPair) {
  // The canonical circuit: H on qubit 0 then CNOT(0 -> 1) on |00>.
  Matrix rho = pure_density(basis_state(2, 0));
  rho = apply_unitary(lift_single(hadamard(), 2, 0), rho);
  rho = apply_unitary(cnot(2, 0, 1), rho);
  EXPECT_LT(rho.max_abs_diff(pure_density(bell_state(BellState::PhiPlus))),
            1e-12);
}

TEST(Measurement, DeterministicOnBasisStates) {
  const Matrix rho = pure_density(basis_state(2, 2));  // |10>
  const MeasurementBranches on_q0 = measure_qubit(rho, 0);
  EXPECT_NEAR(on_q0.one.probability, 1.0, 1e-15);
  EXPECT_NEAR(on_q0.zero.probability, 0.0, 1e-15);
  const MeasurementBranches on_q1 = measure_qubit(rho, 1);
  EXPECT_NEAR(on_q1.zero.probability, 1.0, 1e-15);
}

TEST(Measurement, BellPairGivesCorrelatedOutcomes) {
  const Matrix rho = pure_density(bell_state(BellState::PhiPlus));
  const MeasurementBranches first = measure_qubit(rho, 0);
  EXPECT_NEAR(first.zero.probability, 0.5, 1e-15);
  EXPECT_NEAR(first.one.probability, 0.5, 1e-15);
  // After measuring qubit 0 as 0, qubit 1 must also read 0.
  const MeasurementBranches second = measure_qubit(first.zero.post_state, 1);
  EXPECT_NEAR(second.zero.probability, 1.0, 1e-12);
}

TEST(Measurement, ProbabilitiesSumToOneAndStatesValid) {
  const Matrix rho = werner_state(0.6);
  for (std::size_t q : {0u, 1u}) {
    const MeasurementBranches branches = measure_qubit(rho, q);
    EXPECT_NEAR(branches.zero.probability + branches.one.probability, 1.0,
                1e-12);
    EXPECT_TRUE(is_density_matrix(branches.zero.post_state, 1e-9));
    EXPECT_TRUE(is_density_matrix(branches.one.post_state, 1e-9));
  }
}

}  // namespace
}  // namespace qntn::quantum
