#include "quantum/eig.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qntn::quantum {
namespace {

const Complex kI{0.0, 1.0};

Matrix random_hermitian(std::size_t n, Rng& rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = rng.normal(0.0, 1.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      const Complex v{rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
      m(i, j) = v;
      m(j, i) = std::conj(v);
    }
  }
  return m;
}

TEST(Eigen, DiagonalMatrix) {
  const Matrix m{{3.0, 0.0}, {0.0, -1.0}};
  const EigenDecomposition eig = eigen_hermitian(m);
  EXPECT_NEAR(eig.eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-12);
}

TEST(Eigen, PauliX) {
  const Matrix x{{0.0, 1.0}, {1.0, 0.0}};
  const EigenDecomposition eig = eigen_hermitian(x);
  EXPECT_NEAR(eig.eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-12);
}

TEST(Eigen, PauliYComplexEntries) {
  const Matrix y{{0.0, -kI}, {kI, 0.0}};
  const EigenDecomposition eig = eigen_hermitian(y);
  EXPECT_NEAR(eig.eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-12);
}

TEST(Eigen, RejectsNonHermitian) {
  const Matrix m{{0.0, 1.0}, {2.0, 0.0}};
  EXPECT_THROW((void)eigen_hermitian(m), PreconditionError);
  EXPECT_THROW((void)eigen_hermitian(Matrix(2, 3)), PreconditionError);
}

/// Reconstruction property over random Hermitian matrices of varying size.
class EigenReconstruction : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenReconstruction, VLambdaVDaggerEqualsInput) {
  Rng rng(GetParam() * 7919 + 1);
  for (int round = 0; round < 5; ++round) {
    const Matrix m = random_hermitian(GetParam(), rng);
    const EigenDecomposition eig = eigen_hermitian(m);
    // Eigenvector matrix is unitary.
    EXPECT_TRUE(eig.eigenvectors.is_unitary(1e-9));
    // Reconstruct: V diag(lambda) V^dagger.
    Matrix lambda(m.rows(), m.rows());
    for (std::size_t i = 0; i < m.rows(); ++i) lambda(i, i) = eig.eigenvalues[i];
    const Matrix rebuilt =
        eig.eigenvectors * lambda * eig.eigenvectors.dagger();
    EXPECT_LT(rebuilt.max_abs_diff(m), 1e-9);
    // Eigenvalues ascending.
    for (std::size_t i = 0; i + 1 < m.rows(); ++i) {
      EXPECT_LE(eig.eigenvalues[i], eig.eigenvalues[i + 1]);
    }
    // Trace preserved.
    double sum = 0.0;
    for (double lam : eig.eigenvalues) sum += lam;
    EXPECT_NEAR(sum, m.trace().real(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenReconstruction,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12));

TEST(SqrtPsd, SquaresBackToInput) {
  Rng rng(42);
  for (int round = 0; round < 5; ++round) {
    const Matrix h = random_hermitian(4, rng);
    const Matrix psd = h * h.dagger();  // guaranteed PSD
    const Matrix root = sqrt_psd(psd);
    EXPECT_TRUE(root.is_hermitian(1e-8));
    EXPECT_LT((root * root).max_abs_diff(psd), 1e-8);
  }
}

TEST(SqrtPsd, IdentityAndZero) {
  EXPECT_LT(sqrt_psd(Matrix::identity(3)).max_abs_diff(Matrix::identity(3)),
            1e-12);
  const Matrix zero(2, 2);
  EXPECT_LT(sqrt_psd(zero).max_abs_diff(zero), 1e-12);
}

TEST(SqrtPsd, ToleratesTinyNegativeEigenvalues) {
  Matrix m{{1.0, 0.0}, {0.0, -1e-12}};
  EXPECT_NO_THROW(sqrt_psd(m));
}

TEST(SqrtPsd, RejectsIndefiniteMatrix) {
  const Matrix m{{1.0, 0.0}, {0.0, -0.5}};
  EXPECT_THROW((void)sqrt_psd(m), PreconditionError);
}

TEST(SpectralApply, SquareFunctionMatchesProduct) {
  Rng rng(5);
  const Matrix h = random_hermitian(3, rng);
  const Matrix squared = spectral_apply(h, [](double x) { return x * x; });
  EXPECT_LT(squared.max_abs_diff(h * h), 1e-9);
}

}  // namespace
}  // namespace qntn::quantum
