#include "quantum/channels.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "quantum/state.hpp"

namespace qntn::quantum {
namespace {

TEST(Channels, AmplitudeDampingKrausMatchPaperEq3) {
  const double eta = 0.49;
  const KrausChannel ch = amplitude_damping(eta);
  const auto& ops = ch.kraus_operators();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_NEAR(ops[0](0, 0).real(), 1.0, 1e-15);
  EXPECT_NEAR(ops[0](1, 1).real(), std::sqrt(eta), 1e-15);
  EXPECT_NEAR(ops[1](0, 1).real(), std::sqrt(1.0 - eta), 1e-15);
  EXPECT_NEAR(ops[1](1, 0).real(), 0.0, 1e-15);
}

TEST(Channels, AmplitudeDampingIdentityAtFullTransmissivity) {
  const Matrix rho = werner_state(0.8);
  const Matrix out = amplitude_damping(1.0).apply_to_qubit(rho, 1);
  EXPECT_LT(out.max_abs_diff(rho), 1e-15);
}

TEST(Channels, AmplitudeDampingCollapsesToGroundAtZero) {
  const Matrix rho = pure_density(basis_state(1, 1));  // |1><1|
  const Matrix out = amplitude_damping(0.0).apply(rho);
  EXPECT_NEAR(out(0, 0).real(), 1.0, 1e-15);
  EXPECT_NEAR(out(1, 1).real(), 0.0, 1e-15);
}

TEST(Channels, AmplitudeDampingExcitedPopulationScalesWithEta) {
  const Matrix rho = pure_density(basis_state(1, 1));
  for (double eta : {0.2, 0.5, 0.9}) {
    const Matrix out = amplitude_damping(eta).apply(rho);
    EXPECT_NEAR(out(1, 1).real(), eta, 1e-15);
    EXPECT_NEAR(out(0, 0).real(), 1.0 - eta, 1e-15);
  }
}

TEST(Channels, AmplitudeDampingSemigroupComposition) {
  // AD(a) then AD(b) equals AD(a*b) — the property that lets the routing
  // layer use the transmissivity product for multi-hop fidelity.
  const double a = 0.8, b = 0.7;
  const Matrix rho = werner_state(0.9);
  const Matrix sequential =
      amplitude_damping(b).apply_to_qubit(
          amplitude_damping(a).apply_to_qubit(rho, 1), 1);
  const Matrix direct = amplitude_damping(a * b).apply_to_qubit(rho, 1);
  EXPECT_LT(sequential.max_abs_diff(direct), 1e-12);
}

TEST(Channels, RejectsOutOfRangeParameters) {
  EXPECT_THROW((void)amplitude_damping(-0.1), PreconditionError);
  EXPECT_THROW((void)amplitude_damping(1.1), PreconditionError);
  EXPECT_THROW((void)depolarizing(2.0), PreconditionError);
  EXPECT_THROW((void)dephasing(-1.0), PreconditionError);
  EXPECT_THROW((void)bit_flip(1.5), PreconditionError);
}

/// CPTP property over a channel/parameter grid.
using ChannelFactory = KrausChannel (*)(double);
class CptpSweep
    : public ::testing::TestWithParam<std::tuple<ChannelFactory, double>> {};

TEST_P(CptpSweep, TracePreservingAndPositive) {
  const auto [factory, p] = GetParam();
  const KrausChannel ch = factory(p);
  EXPECT_TRUE(ch.is_trace_preserving(1e-12));
  // Applying to valid states yields valid states.
  for (const Matrix& rho :
       {pure_density(basis_state(1, 0)), pure_density(basis_state(1, 1)),
        maximally_mixed(1)}) {
    const Matrix out = ch.apply(rho);
    EXPECT_TRUE(is_density_matrix(out, 1e-9)) << ch.name() << " p=" << p;
  }
  // And on entangled two-qubit states via apply_to_qubit.
  const Matrix bell = pure_density(bell_state(BellState::PhiPlus));
  for (std::size_t q : {0u, 1u}) {
    EXPECT_TRUE(is_density_matrix(ch.apply_to_qubit(bell, q), 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CptpSweep,
    ::testing::Combine(::testing::Values(&amplitude_damping, &depolarizing,
                                         &dephasing, &bit_flip),
                       ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)));

TEST(Channels, DepolarizingFullStrengthGivesMaximallyMixed) {
  const Matrix rho = pure_density(basis_state(1, 0));
  const Matrix out = depolarizing(0.75).apply(rho);
  // p = 3/4 is the completely depolarizing point of this parameterisation.
  EXPECT_LT(out.max_abs_diff(maximally_mixed(1)), 1e-12);
}

TEST(Channels, DephasingKillsCoherencesKeepsPopulations) {
  Matrix rho{{0.5, Complex(0.5, 0.0)}, {Complex(0.5, 0.0), 0.5}};  // |+><+|
  const Matrix out = dephasing(1.0).apply(rho);
  EXPECT_NEAR(out(0, 0).real(), 0.5, 1e-15);
  EXPECT_NEAR(std::abs(out(0, 1)), 0.5, 1e-15);  // p=1 flips sign, |.|=0.5
  const Matrix half = dephasing(0.5).apply(rho);
  EXPECT_NEAR(std::abs(half(0, 1)), 0.0, 1e-15);  // fully dephased at p=1/2
}

TEST(Channels, BitFlipSwapsPopulations) {
  const Matrix rho = pure_density(basis_state(1, 0));
  const Matrix out = bit_flip(1.0).apply(rho);
  EXPECT_NEAR(out(1, 1).real(), 1.0, 1e-15);
}

TEST(Channels, ApplyToQubitTargetsCorrectQubit) {
  // Damp qubit 0 (MSB) of |10><10|: population must move to |00>.
  const Matrix rho = pure_density(basis_state(2, 2));  // |10>
  const Matrix out = amplitude_damping(0.0).apply_to_qubit(rho, 0);
  EXPECT_NEAR(out(0, 0).real(), 1.0, 1e-15);
  // Damping qubit 1 of |10> does nothing (it is already |0>).
  const Matrix same = amplitude_damping(0.0).apply_to_qubit(rho, 1);
  EXPECT_LT(same.max_abs_diff(rho), 1e-15);
}

TEST(Channels, CompositionOperator) {
  const KrausChannel composed =
      amplitude_damping(0.8).then(amplitude_damping(0.5));
  EXPECT_TRUE(composed.is_trace_preserving(1e-12));
  const Matrix rho = werner_state(1.0);
  const Matrix via_then = composed.apply_to_qubit(rho, 1);
  const Matrix direct = amplitude_damping(0.4).apply_to_qubit(rho, 1);
  EXPECT_LT(via_then.max_abs_diff(direct), 1e-12);
}

TEST(Channels, TransmitBellHalfMatchesPaperEq4) {
  const double eta = 0.7;
  const Matrix rho = transmit_bell_half(eta);
  EXPECT_TRUE(is_density_matrix(rho));
  // Analytic form: 1/2 (|00>+sqrt(eta)|11>)(...)^dag + (1-eta)/2 |10><10|.
  EXPECT_NEAR(rho(0, 0).real(), 0.5, 1e-15);
  EXPECT_NEAR(rho(0, 3).real(), 0.5 * std::sqrt(eta), 1e-15);
  EXPECT_NEAR(rho(3, 3).real(), 0.5 * eta, 1e-15);
  EXPECT_NEAR(rho(2, 2).real(), 0.5 * (1.0 - eta), 1e-15);
  EXPECT_NEAR(rho(1, 1).real(), 0.0, 1e-15);
}

TEST(Channels, RejectsMismatchedDimensions) {
  const KrausChannel ch = amplitude_damping(0.5);
  EXPECT_THROW((void)ch.apply(Matrix::identity(4)), PreconditionError);
  EXPECT_THROW((void)ch.apply_to_qubit(maximally_mixed(2), 2), PreconditionError);
  EXPECT_THROW((void)ch.then(KrausChannel("id4", {Matrix::identity(4)})),
               PreconditionError);
}

}  // namespace
}  // namespace qntn::quantum
