// qntn_cli — one entry point for the library's studies.
//
//   qntn_cli config                      print the default configuration
//   qntn_cli coverage N                  space-ground day at N satellites
//   qntn_cli air                         air-ground architecture
//   qntn_cli hybrid N                    hybrid architecture at N satellites
//   qntn_cli sweep                       Figs. 6-8 full sweep
//   qntn_cli em N                        entanglement-management serving at N
//   qntn_cli traffic N                   open-arrival traffic serving at N
//   qntn_cli contacts N                  compiled contact plan at N satellites
//   qntn_cli sessions N                  session admission at N satellites
//
// Common flags (tools/cli_common.hpp): --config FILE, --out PATH,
// --threads N, --seed N, --metrics-out FILE, --trace-out FILE,
// --trace-level off|snapshots|requests, --profile-out FILE. A trailing
// positional argument is still accepted as the config file (legacy
// spelling).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "core/experiments.hpp"
#include "plan/session_scheduler.hpp"

namespace {

using namespace qntn;

void print_metrics_block(const core::ArchitectureMetrics& m) {
  std::printf("  coverage  %.2f %%\n", m.coverage_percent);
  std::printf("  served    %.2f %% (%zu/%zu; %zu no-path, %zu isolated",
              m.served_percent, m.requests_served, m.requests_issued,
              m.requests_no_path, m.requests_isolated);
  if (m.requests_congested > 0) {
    std::printf(", %zu congested", m.requests_congested);
  }
  if (m.requests_rejected_capacity > 0) {
    std::printf(", %zu rejected", m.requests_rejected_capacity);
  }
  if (m.requests_dropped_deadline > 0) {
    std::printf(", %zu deadline", m.requests_dropped_deadline);
  }
  std::printf(")\n");
  std::printf("  fidelity  %.4f (mean path eta %.4f, %.2f hops)\n",
              m.mean_fidelity, m.mean_transmissivity, m.mean_hops);
  std::printf("  handovers %zu\n", m.handovers);
  if (m.em.enabled) {
    std::printf("  em        %zu swaps (depth %.2f mean), %zu purify rounds, "
                "%zu pairs\n",
                m.em.swaps, m.em.mean_swap_depth, m.em.purification_rounds,
                m.em.pairs_consumed);
    std::printf("  em        occupancy %.3f mean, %zu SLO-met, %zu spills\n",
                m.em.mean_memory_occupancy, m.em.slo_met,
                m.em.multipath_spills);
    std::printf("  latency   p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
                m.latency_p50 * 1e3, m.latency_p95 * 1e3, m.latency_p99 * 1e3);
  }
  if (m.traffic.enabled) {
    std::printf("  traffic   peak util %.3f mean, queue depth %zu peak\n",
                m.traffic.mean_peak_utilisation, m.traffic.peak_queue_depth);
    std::printf("  latency   p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
                m.latency_p50 * 1e3, m.latency_p95 * 1e3, m.latency_p99 * 1e3);
    std::printf("  queueing  p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
                m.waiting_p50 * 1e3, m.waiting_p95 * 1e3, m.waiting_p99 * 1e3);
  }
}

int cmd_config() {
  std::fputs(core::serialize_config(core::QntnConfig{}).c_str(), stdout);
  return 0;
}

int cmd_coverage(std::size_t n, const core::RunContext& ctx) {
  const core::ArchitectureMetrics point = core::evaluate_space_ground(ctx, n);
  std::printf("space-ground @%zu satellites\n", n);
  print_metrics_block(point);
  return 0;
}

int cmd_air(const core::RunContext& ctx) {
  const core::ArchitectureMetrics air = core::evaluate_air_ground(ctx);
  std::printf("air-ground\n");
  print_metrics_block(air);
  return 0;
}

int cmd_hybrid(std::size_t n, core::RunContext ctx) {
  ctx.config.enable_hap_satellite = true;
  const core::ArchitectureMetrics point = core::evaluate_hybrid(ctx, n);
  std::printf("hybrid @%zu satellites\n", n);
  print_metrics_block(point);
  return 0;
}

int cmd_sweep(core::RunContext ctx, std::size_t threads) {
  ThreadPool pool(threads);
  ctx.pool = &pool;
  const auto sweep =
      core::space_ground_sweep(ctx, core::paper_constellation_sizes());
  std::printf("%-6s %-10s %-10s %-10s\n", "sats", "cover%", "served%",
              "fidelity");
  for (const core::ArchitectureMetrics& p : sweep) {
    std::printf("%-6zu %-10.2f %-10.2f %-10.4f\n", p.satellites,
                p.coverage_percent, p.served_percent, p.mean_fidelity);
  }
  return 0;
}

int cmd_em(std::size_t n, core::RunContext ctx) {
  // Entanglement-management serving over the space-ground architecture:
  // buffered memories, swap trees, purification, k-path load balancing.
  ctx.config.serving_mode = core::ServingMode::Entanglement;
  const core::ArchitectureMetrics point = core::evaluate_space_ground(ctx, n);
  std::printf("space-ground @%zu satellites (entanglement serving)\n", n);
  print_metrics_block(point);
  return 0;
}

int cmd_traffic(std::size_t n, core::RunContext ctx) {
  // Open-arrival traffic serving over the space-ground architecture:
  // per-LAN diurnal Poisson arrivals, capacity claims, queueing deadlines
  // and admission backpressure (DESIGN.md §12).
  ctx.config.serving_mode = core::ServingMode::Traffic;
  const core::ArchitectureMetrics point = core::evaluate_space_ground(ctx, n);
  std::printf("space-ground @%zu satellites (traffic serving)\n", n);
  print_metrics_block(point);
  return 0;
}

int cmd_contacts(std::size_t n, const core::QntnConfig& config) {
  const sim::NetworkModel model = core::build_space_ground_model(config, n);
  const plan::ContactPlan contact_plan = plan::compile_contact_plan(
      model, config.link_policy(), config.plan_options());
  const plan::ContactPlanStats stats = contact_plan.stats();
  std::printf("contact plan @%zu satellites over %.0f s\n", n,
              contact_plan.horizon());
  std::printf("  windows        %zu\n", stats.window_count);
  std::printf("  total contact  %.0f s (mean window %.1f s)\n",
              stats.total_contact, stats.mean_window_duration);
  std::printf("  eta samples    %zu\n", stats.sample_count);
  std::printf("  static links   %zu\n", contact_plan.static_links().size());
  return 0;
}

int cmd_sessions(std::size_t n, const core::QntnConfig& config) {
  const sim::NetworkModel model = core::build_space_ground_model(config, n);
  const plan::ContactPlan contact_plan = plan::compile_contact_plan(
      model, config.link_policy(), config.plan_options());
  const plan::SessionScheduler scheduler(contact_plan, model);

  // One 3-minute session per LAN pair per hour, arrivals staggered. Single
  // satellites bridge a LAN pair for ~3.3 min at a time, so longer sessions
  // are blocked at every Table II size.
  std::vector<plan::SessionRequest> requests;
  for (std::size_t hour = 0; hour < 24; ++hour) {
    for (std::size_t a = 0; a < model.lan_count(); ++a) {
      for (std::size_t b = a + 1; b < model.lan_count(); ++b) {
        requests.push_back({a, b, 3600.0 * static_cast<double>(hour), 180.0});
      }
    }
  }
  const plan::SessionSchedule schedule = scheduler.schedule(requests);
  std::printf("sessions @%zu satellites: %zu requests\n", n, requests.size());
  std::printf("  admitted   %zu\n  blocked    %zu (%.1f %%)\n",
              schedule.sessions.size(), schedule.blocked.size(),
              100.0 * schedule.blocked_fraction(requests.size()));
  if (!schedule.sessions.empty()) {
    std::printf("  wait       %.1f s mean\n  handovers  %.2f mean\n",
                schedule.wait.mean(), schedule.handovers.mean());
  }
  return 0;
}

int usage() {
  std::fputs(
      "usage: qntn_cli <config | coverage N | air | hybrid N | sweep | em N | "
      "traffic N | contacts N | sessions N>\n"
      "  [--config FILE] [--threads N] [--seed N] [--metrics-out FILE]\n"
      "  [--trace-out FILE] [--trace-level off|snapshots|requests]\n"
      "  [--profile-out FILE]\n",
      stderr);
  return 2;
}

std::size_t positional_count(const tools::CommonOptions& opts,
                             std::size_t index) {
  return static_cast<std::size_t>(
      tools::parse_u64("count", opts.positional.at(index)));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    tools::CommonOptions opts = tools::parse_common_flags(argc, argv);
    if (opts.positional.empty()) return usage();
    const std::string command = opts.positional.front();
    // Legacy spelling: a trailing positional argument is the config file.
    const std::size_t arity =
        (command == "air" || command == "sweep" || command == "config") ? 1 : 2;
    if (!opts.config_path.has_value() && opts.positional.size() > arity) {
      opts.config_path = opts.positional.back();
    }

    if (command == "config") return cmd_config();

    const tools::ObsBundle bundle = tools::make_obs(opts);
    const core::RunContext ctx =
        tools::make_run_context(opts, bundle, tools::load_config(opts));
    // Ambient for the commands below run_scenario's reach (contact-plan
    // compilation, session scheduling): their counters land in
    // --metrics-out and their spans in --profile-out too.
    const obs::ScopedRegistry ambient(bundle.registry.get());
    const obs::ScopedProfiler profiling(bundle.profiler.get());

    int rc = -1;
    if (command == "air") {
      rc = cmd_air(ctx);
    } else if (command == "sweep") {
      rc = cmd_sweep(ctx, opts.threads.value_or(0));
    } else if (command == "coverage" && opts.positional.size() >= 2) {
      rc = cmd_coverage(positional_count(opts, 1), ctx);
    } else if (command == "hybrid" && opts.positional.size() >= 2) {
      rc = cmd_hybrid(positional_count(opts, 1), ctx);
    } else if (command == "em" && opts.positional.size() >= 2) {
      rc = cmd_em(positional_count(opts, 1), ctx);
    } else if (command == "traffic" && opts.positional.size() >= 2) {
      rc = cmd_traffic(positional_count(opts, 1), ctx);
    } else if (command == "contacts" && opts.positional.size() >= 2) {
      rc = cmd_contacts(positional_count(opts, 1), ctx.config);
    } else if (command == "sessions" && opts.positional.size() >= 2) {
      rc = cmd_sessions(positional_count(opts, 1), ctx.config);
    }
    if (rc < 0) return usage();
    tools::write_metrics(opts, bundle);
    tools::write_profile(opts, bundle);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
