// qntn_cli — one entry point for the library's studies.
//
//   qntn_cli config                      print the default configuration
//   qntn_cli coverage N [cfg]            space-ground day at N satellites
//   qntn_cli air [cfg]                   air-ground architecture
//   qntn_cli hybrid N [cfg]              hybrid architecture at N satellites
//   qntn_cli sweep [cfg]                 Figs. 6-8 full sweep
//   qntn_cli traffic RATE [cfg]          Poisson traffic on the air-ground net
//   qntn_cli contacts N [cfg]            compiled contact plan at N satellites
//   qntn_cli sessions N [cfg]            session admission at N satellites
//
// [cfg] is an optional key = value file (see `qntn_cli config`); omitted
// keys keep the calibrated paper defaults.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/experiments.hpp"
#include "plan/session_scheduler.hpp"
#include "sim/traffic.hpp"

namespace {

using namespace qntn;

core::QntnConfig config_from(int argc, char** argv, int position) {
  if (position < argc) return core::load_config(argv[position]);
  return core::QntnConfig{};
}

int cmd_config() {
  std::fputs(core::serialize_config(core::QntnConfig{}).c_str(), stdout);
  return 0;
}

int cmd_coverage(std::size_t n, const core::QntnConfig& config) {
  const core::SweepPoint point = core::evaluate_space_ground(config, n);
  std::printf("space-ground @%zu satellites\n", n);
  std::printf("  coverage  %.2f %%\n", point.coverage_percent);
  std::printf("  served    %.2f %%\n", point.served_percent);
  std::printf("  fidelity  %.4f (mean path eta %.4f, %.2f hops)\n",
              point.mean_fidelity, point.mean_transmissivity, point.mean_hops);
  return 0;
}

int cmd_air(const core::QntnConfig& config) {
  const core::AirGroundResult air = core::evaluate_air_ground(config);
  std::printf("air-ground\n");
  std::printf("  coverage  %.2f %%\n  served    %.2f %%\n  fidelity  %.4f\n",
              air.coverage_percent, air.served_percent, air.mean_fidelity);
  return 0;
}

int cmd_hybrid(std::size_t n, core::QntnConfig config) {
  config.enable_hap_satellite = true;
  const core::SweepPoint point = core::evaluate_hybrid(config, n);
  std::printf("hybrid @%zu satellites\n", n);
  std::printf("  coverage  %.2f %%\n  served    %.2f %%\n  fidelity  %.4f\n",
              point.coverage_percent, point.served_percent,
              point.mean_fidelity);
  return 0;
}

int cmd_sweep(const core::QntnConfig& config) {
  ThreadPool pool;
  const auto sweep =
      core::space_ground_sweep(config, core::paper_constellation_sizes(), pool);
  std::printf("%-6s %-10s %-10s %-10s\n", "sats", "cover%", "served%",
              "fidelity");
  for (const core::SweepPoint& p : sweep) {
    std::printf("%-6zu %-10.2f %-10.2f %-10.4f\n", p.satellites,
                p.coverage_percent, p.served_percent, p.mean_fidelity);
  }
  return 0;
}

int cmd_traffic(double rate, const core::QntnConfig& config) {
  const sim::NetworkModel model = core::build_air_ground_model(config);
  const sim::TopologyBuilder topology(model, config.link_policy());
  sim::TrafficConfig tc;
  tc.arrival_rate = rate;
  tc.duration = 300.0;
  const sim::TrafficResult result =
      sim::run_traffic_simulation(model, topology, tc);
  std::printf("traffic @%.1f req/s for %.0f s\n", rate, tc.duration);
  std::printf("  arrivals   %zu\n  served     %zu (%.1f %%)\n",
              result.arrivals, result.served,
              100.0 * result.served_fraction());
  std::printf("  dropped    %zu no-path, %zu queue\n", result.dropped_no_path,
              result.dropped_queue);
  if (result.served > 0) {
    std::printf("  latency    %.2f ms mean (%.2f ms wait)\n",
                result.latency.mean() * 1e3, result.waiting.mean() * 1e3);
    std::printf("  fidelity   %.4f mean\n", result.fidelity.mean());
  }
  return 0;
}

int cmd_contacts(std::size_t n, const core::QntnConfig& config) {
  const sim::NetworkModel model = core::build_space_ground_model(config, n);
  const plan::ContactPlan contact_plan = plan::compile_contact_plan(
      model, config.link_policy(), config.plan_options());
  const plan::ContactPlanStats stats = contact_plan.stats();
  std::printf("contact plan @%zu satellites over %.0f s\n", n,
              contact_plan.horizon());
  std::printf("  windows        %zu\n", stats.window_count);
  std::printf("  total contact  %.0f s (mean window %.1f s)\n",
              stats.total_contact, stats.mean_window_duration);
  std::printf("  eta samples    %zu\n", stats.sample_count);
  std::printf("  static links   %zu\n", contact_plan.static_links().size());
  return 0;
}

int cmd_sessions(std::size_t n, const core::QntnConfig& config) {
  const sim::NetworkModel model = core::build_space_ground_model(config, n);
  const plan::ContactPlan contact_plan = plan::compile_contact_plan(
      model, config.link_policy(), config.plan_options());
  const plan::SessionScheduler scheduler(contact_plan, model);

  // One 3-minute session per LAN pair per hour, arrivals staggered. Single
  // satellites bridge a LAN pair for ~3.3 min at a time, so longer sessions
  // are blocked at every Table II size.
  std::vector<plan::SessionRequest> requests;
  for (std::size_t hour = 0; hour < 24; ++hour) {
    for (std::size_t a = 0; a < model.lan_count(); ++a) {
      for (std::size_t b = a + 1; b < model.lan_count(); ++b) {
        requests.push_back({a, b, 3600.0 * static_cast<double>(hour), 180.0});
      }
    }
  }
  const plan::SessionSchedule schedule = scheduler.schedule(requests);
  std::printf("sessions @%zu satellites: %zu requests\n", n, requests.size());
  std::printf("  admitted   %zu\n  blocked    %zu (%.1f %%)\n",
              schedule.sessions.size(), schedule.blocked.size(),
              100.0 * schedule.blocked_fraction(requests.size()));
  if (!schedule.sessions.empty()) {
    std::printf("  wait       %.1f s mean\n  handovers  %.2f mean\n",
                schedule.wait.mean(), schedule.handovers.mean());
  }
  return 0;
}

int usage() {
  std::fputs(
      "usage: qntn_cli <config | coverage N | air | hybrid N | sweep | "
      "traffic RATE | contacts N | sessions N> [config-file]\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "config") return cmd_config();
    if (command == "air") return cmd_air(config_from(argc, argv, 2));
    if (command == "sweep") return cmd_sweep(config_from(argc, argv, 2));
    if (command == "coverage" && argc >= 3) {
      return cmd_coverage(static_cast<std::size_t>(std::atoi(argv[2])),
                          config_from(argc, argv, 3));
    }
    if (command == "hybrid" && argc >= 3) {
      return cmd_hybrid(static_cast<std::size_t>(std::atoi(argv[2])),
                        config_from(argc, argv, 3));
    }
    if (command == "traffic" && argc >= 3) {
      return cmd_traffic(std::atof(argv[2]), config_from(argc, argv, 3));
    }
    if (command == "contacts" && argc >= 3) {
      return cmd_contacts(static_cast<std::size_t>(std::atoi(argv[2])),
                          config_from(argc, argv, 3));
    }
    if (command == "sessions" && argc >= 3) {
      return cmd_sessions(static_cast<std::size_t>(std::atoi(argv[2])),
                          config_from(argc, argv, 3));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
