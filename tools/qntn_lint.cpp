#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "lint/include_graph.hpp"
#include "lint/scan.hpp"

/// qntn_lint: the project's domain linter. Runs four passes over the tree
/// (see src/lint/): the per-file determinism/hygiene rules, the
/// include-graph layering analyzer, the cross-artifact consistency checks
/// (counters/spans/config keys vs. docs and goldens), and the
/// stale-suppression audit. Exit status 0 when the tree is clean, 1 when
/// any rule fires, 2 on usage/IO errors. Diagnostics are one per line,
/// `file:line: error: [rule] message`, so editors and CI annotate them;
/// `--json` emits the same findings as a stable `qntn-lint-v1` document.

namespace {

void print_usage() {
  std::fputs(
      "usage: qntn_lint [--root DIR] [--json] [--graph-out PREFIX]\n"
      "                 [--list-rules]\n"
      "\n"
      "Checks the qntn source tree (src/ tools/ bench/ tests/ examples/\n"
      "under --root, default the current directory) against the project\n"
      "lint rules: per-file determinism/hygiene checks, include-graph\n"
      "layering, cross-artifact consistency (counters, spans, config\n"
      "keys vs. docs/goldens), and a stale-suppression audit.\n"
      "tests/lint/fixtures is excluded: it is the rule test corpus and\n"
      "violates the rules on purpose.\n"
      "\n"
      "  --root DIR          repository root to scan\n"
      "  --json              print findings as qntn-lint-v1 JSON\n"
      "  --graph-out PREFIX  write the module dependency graph as\n"
      "                      PREFIX.dot and PREFIX.json\n"
      "  --list-rules        print the rule table and exit\n",
      stderr);
}

void list_rules() {
  for (const qntn::lint::RuleSpec& rule : qntn::lint::rules()) {
    std::printf("%-24s %s\n", std::string(rule.name).c_str(),
                std::string(rule.message).c_str());
    if (!rule.suppress.empty()) {
      std::printf("%-24s   (justify with `// lint: %s`)\n", "",
                  std::string(rule.suppress).c_str());
    }
  }
  for (const qntn::lint::PassRule& rule : qntn::lint::pass_rules()) {
    std::printf("%-24s %s\n", std::string(rule.name).c_str(),
                std::string(rule.message).c_str());
    if (!rule.suppress.empty()) {
      std::printf("%-24s   (justify with `// lint: %s`)\n", "",
                  std::string(rule.suppress).c_str());
    }
  }
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw qntn::Error("qntn_lint: cannot write " + path);
  out << text;
  if (!out) throw qntn::Error("qntn_lint: write failed: " + path);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string graph_prefix;
  bool as_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--graph-out") == 0 && i + 1 < argc) {
      graph_prefix = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      list_rules();
      return 0;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "qntn_lint: unknown argument '%s'\n", argv[i]);
      print_usage();
      return 2;
    }
  }

  try {
    const qntn::lint::TreeScan scan = qntn::lint::load_tree(root);
    const std::vector<qntn::lint::Finding> findings =
        qntn::lint::check_tree(scan);

    if (!graph_prefix.empty()) {
      const qntn::lint::IncludeGraph graph =
          qntn::lint::build_include_graph(scan.text);
      const auto& layers = qntn::lint::default_layers();
      write_text(graph_prefix + ".dot", qntn::lint::graph_dot(graph, layers));
      write_text(graph_prefix + ".json",
                 qntn::lint::graph_json(graph, layers));
    }

    const std::size_t files = scan.text.size();
    if (as_json) {
      std::fputs(qntn::lint::findings_json(findings, files).c_str(), stdout);
      return findings.empty() ? 0 : 1;
    }
    for (const qntn::lint::Finding& f : findings) {
      std::printf("%s:%zu: error: [%s] %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
    }
    if (findings.empty()) {
      std::printf("qntn_lint: %zu files clean\n", files);
      return 0;
    }
    std::printf("qntn_lint: %zu finding(s) in %zu files\n", findings.size(),
                files);
    return 1;
  } catch (const qntn::Error& e) {
    std::fprintf(stderr, "qntn_lint: %s\n", e.what());
    return 2;
  }
}
