#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "lint/scan.hpp"

/// qntn_lint: the project's domain linter. Enforces the determinism and
/// hygiene invariants clang-tidy cannot know (see src/lint/rules.cpp for
/// the rule table). Exit status 0 when the tree is clean, 1 when any rule
/// fires, 2 on usage/IO errors. Diagnostics are one per line,
/// `file:line: error: [rule] message`, so editors and CI annotate them.

namespace {

void print_usage() {
  std::fputs(
      "usage: qntn_lint [--root DIR] [--list-rules]\n"
      "\n"
      "Checks the qntn source tree (src/ tools/ bench/ tests/ examples/\n"
      "under --root, default the current directory) against the project\n"
      "lint rules. tests/lint/fixtures is excluded: it is the rule test\n"
      "corpus and violates the rules on purpose.\n"
      "\n"
      "  --root DIR    repository root to scan\n"
      "  --list-rules  print the rule table and exit\n",
      stderr);
}

void list_rules() {
  for (const qntn::lint::RuleSpec& rule : qntn::lint::rules()) {
    std::printf("%-18s %s\n", std::string(rule.name).c_str(),
                std::string(rule.message).c_str());
    if (!rule.suppress.empty()) {
      std::printf("%-18s   (justify with `// lint: %s`)\n", "",
                  std::string(rule.suppress).c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      list_rules();
      return 0;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "qntn_lint: unknown argument '%s'\n", argv[i]);
      print_usage();
      return 2;
    }
  }

  try {
    const std::vector<qntn::lint::Finding> findings =
        qntn::lint::check_tree(root);
    for (const qntn::lint::Finding& f : findings) {
      std::printf("%s:%zu: error: [%s] %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
    }
    const std::size_t files = qntn::lint::list_sources(root).size();
    if (findings.empty()) {
      std::printf("qntn_lint: %zu files clean\n", files);
      return 0;
    }
    std::printf("qntn_lint: %zu finding(s) in %zu files\n", findings.size(),
                files);
    return 1;
  } catch (const qntn::Error& e) {
    std::fprintf(stderr, "qntn_lint: %s\n", e.what());
    return 2;
  }
}
