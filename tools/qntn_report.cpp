// qntn_report — one-shot reproduction report. Runs every paper experiment
// with the given (or default) configuration and writes a self-contained
// report directory: CSV series per figure plus a REPORT.md summary with
// paper-vs-measured numbers.
//
//   qntn_report [out-dir]        full report (legacy: out-dir config-file)
//   qntn_report metrics [N]      run space-ground at N satellites (default
//                                54) and print the collected counters/stats
//   qntn_report bench-compare <baseline.json> <current.json>
//                                gate current BENCH_*.json results against a
//                                baseline; exit 1 on regression
//   qntn_report bench-compare --check-schema <file.json>...
//                                validate files against the bench schema
//
// Common flags (tools/cli_common.hpp): --config FILE, --out PATH,
// --threads N, --seed N, --metrics-out FILE, --trace-out FILE,
// --trace-level off|snapshots|requests, --profile-out FILE.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "obs/perf_report.hpp"

namespace {

using namespace qntn;

void write(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw qntn::Error("cannot write " + path.string());
  out << content;
}

/// `qntn_report metrics [N]`: one instrumented space-ground run, counters
/// and timer/stat distributions printed as tables (and written as JSON when
/// --metrics-out asks for it).
int cmd_metrics(const tools::CommonOptions& opts) {
  const std::size_t n = opts.positional.size() >= 2
                            ? static_cast<std::size_t>(tools::parse_u64(
                                  "count", opts.positional[1]))
                            : 54;
  obs::Registry registry;
  std::unique_ptr<obs::TraceSink> trace;
  if (opts.trace_out.has_value()) {
    trace = std::make_unique<obs::TraceSink>(*opts.trace_out, opts.trace_level);
  }
  std::unique_ptr<obs::Profiler> profiler;
  if (opts.profile_out.has_value()) {
    profiler = std::make_unique<obs::Profiler>();
  }
  core::RunContext ctx;
  ctx.config = tools::load_config(opts);
  ctx.registry = &registry;
  ctx.trace = trace.get();
  ctx.profiler = profiler.get();
  ctx.seed = opts.seed;

  const core::ArchitectureMetrics m = core::evaluate_space_ground(ctx, n);
  std::printf("space-ground @%zu satellites: served %.2f %%, fidelity %.4f\n",
              n, m.served_percent, m.mean_fidelity);
  // Latency tails are only meaningful for serving modes with a latency
  // notion (em heralding / traffic queueing); the single-shot model prints
  // a zero row, which keeps the output shape stable for scripts.
  std::printf("latency percentiles: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n",
              m.latency_p50 * 1e3, m.latency_p95 * 1e3, m.latency_p99 * 1e3);
  std::printf(
      "queue-delay percentiles: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n\n",
      m.waiting_p50 * 1e3, m.waiting_p95 * 1e3, m.waiting_p99 * 1e3);

  const obs::MetricsSnapshot snapshot = registry.snapshot();
  Table counters("counters");
  counters.set_header({"name", "value"});
  for (const auto& [name, value] : snapshot.counters) {
    counters.add_row({name, std::to_string(value)});
  }
  std::fputs(counters.to_string().c_str(), stdout);
  std::fputs("\n", stdout);

  Table stats("timers / distributions");
  stats.set_header({"name", "count", "mean", "min", "max", "stddev"});
  for (const auto& [name, running] : snapshot.stats) {
    stats.add_row({name, std::to_string(running.count()),
                   Table::num(running.mean(), 6), Table::num(running.min(), 6),
                   Table::num(running.max(), 6),
                   Table::num(running.stddev(), 6)});
  }
  std::fputs(stats.to_string().c_str(), stdout);

  if (opts.metrics_out.has_value()) {
    std::ofstream out(*opts.metrics_out);
    if (!out) throw qntn::Error("cannot write " + *opts.metrics_out);
    out << snapshot.to_json();
    std::printf("\nwrote %s\n", opts.metrics_out->c_str());
  }
  if (profiler != nullptr) {
    profiler->write_chrome_trace(*opts.profile_out);
    std::printf("wrote %s\n", opts.profile_out->c_str());
  }
  return 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw qntn::Error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Split a thread-suffixed bench case name ("plan_parallel_t8_n108") into
/// the scaling-group key with the thread token removed ("plan_parallel_n108")
/// and the thread count. nullopt when the name carries no `_t<N>` token.
struct ThreadSuffixedCase {
  std::string group;
  std::size_t threads = 0;
};
std::optional<ThreadSuffixedCase> split_thread_suffix(const std::string& name) {
  for (std::size_t pos = name.find("_t"); pos != std::string::npos;
       pos = name.find("_t", pos + 1)) {
    std::size_t end = pos + 2;
    while (end < name.size() &&
           std::isdigit(static_cast<unsigned char>(name[end])) != 0) {
      ++end;
    }
    if (end == pos + 2) continue;              // "_t" with no digits
    if (end < name.size() && name[end] != '_') continue;  // "_traffic" etc.
    ThreadSuffixedCase out;
    out.threads = static_cast<std::size_t>(
        std::strtoul(name.c_str() + pos + 2, nullptr, 10));
    out.group = name.substr(0, pos) + name.substr(end);
    return out;
  }
  return std::nullopt;
}

/// `qntn_report bench-compare`: the perf regression gate. Parses its own
/// argv tail (its flags are not the common tool flags). Exit codes: 0 = no
/// regression / all schemas valid, 1 = regression or invalid schema, 2 =
/// usage error.
int cmd_bench_compare(const std::vector<std::string>& args) {
  const auto usage = []() {
    std::fputs(
        "usage: qntn_report bench-compare <baseline.json> <current.json>\n"
        "         [--threshold FRAC] [--mad-factor X] [--min-ms MS]\n"
        "       qntn_report bench-compare --check-schema <file.json>...\n",
        stderr);
    return 2;
  };

  bool check_schema = false;
  obs::BenchCompareOptions options;
  std::vector<std::string> files;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto take_value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) throw qntn::Error("missing value for " + arg);
      return args[++i];
    };
    if (arg == "--check-schema") {
      check_schema = true;
    } else if (arg == "--threshold") {
      options.threshold = std::stod(take_value());
    } else if (arg == "--mad-factor") {
      options.mad_factor = std::stod(take_value());
    } else if (arg == "--min-ms") {
      options.min_ms = std::stod(take_value());
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown bench-compare flag %s\n",
                   arg.c_str());
      return usage();
    } else {
      files.push_back(arg);
    }
  }

  if (check_schema) {
    if (files.empty()) return usage();
    bool ok = true;
    for (const std::string& file : files) {
      try {
        const obs::BenchReport report = obs::parse_bench_report(read_file(file));
        std::printf("%s: ok (%s, %zu cases)\n", file.c_str(),
                    report.bench.c_str(), report.cases.size());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: INVALID: %s\n", file.c_str(), e.what());
        ok = false;
      }
    }
    return ok ? 0 : 1;
  }

  if (files.size() != 2) return usage();
  const obs::BenchReport baseline = obs::parse_bench_report(read_file(files[0]));
  const obs::BenchReport current = obs::parse_bench_report(read_file(files[1]));
  const obs::BenchComparison comparison =
      obs::compare_bench_reports(baseline, current, options);

  // Scaling efficiency (tN median / t1 median, from the current report):
  // benches emitting thread-suffixed case names ("..._t8_n108") get an
  // extra column so flat thread scaling is visible in the gate output, not
  // only in raw medians. Keyed by the name with the `_t<N>` token removed.
  std::map<std::string, double> t1_median;
  for (const obs::BenchCase& c : current.cases) {
    const auto tc = split_thread_suffix(c.name);
    if (tc.has_value() && tc->threads == 1) t1_median[tc->group] = c.median_ms;
  }
  const auto scaling_cell = [&](const std::string& name,
                                double median) -> std::string {
    const auto tc = split_thread_suffix(name);
    if (!tc.has_value()) return "";
    const auto it = t1_median.find(tc->group);
    if (it == t1_median.end() || it->second <= 0.0) return "";
    return Table::num(median / it->second, 3);
  };

  Table table("bench-compare: " + baseline.bench);
  table.set_header({"case", "base_ms", "new_ms", "ratio", "tN/t1", "verdict"});
  for (const obs::BenchCaseDelta& d : comparison.deltas) {
    const char* verdict = d.regressed   ? "REGRESSED"
                          : d.improved  ? "improved"
                                        : "ok";
    table.add_row({d.name, Table::num(d.base_ms, 4), Table::num(d.new_ms, 4),
                   Table::num(d.ratio, 3), scaling_cell(d.name, d.new_ms),
                   verdict});
  }
  std::fputs(table.to_string().c_str(), stdout);
  for (const std::string& name : comparison.only_base) {
    std::fprintf(stderr, "warning: case \"%s\" only in baseline\n",
                 name.c_str());
  }
  for (const std::string& name : comparison.only_current) {
    std::fprintf(stderr, "warning: case \"%s\" only in current\n",
                 name.c_str());
  }
  if (comparison.regressed()) {
    std::fprintf(stderr,
                 "bench-compare: regression beyond %.0f %% threshold\n",
                 100.0 * options.threshold);
    return 1;
  }
  std::printf("bench-compare: no regression (threshold %.0f %%)\n",
              100.0 * options.threshold);
  return 0;
}

int cmd_report(const tools::CommonOptions& opts) {
  std::filesystem::path out_dir = "qntn_report";
  if (opts.out.has_value()) {
    out_dir = *opts.out;
  } else if (!opts.positional.empty()) {
    out_dir = opts.positional.front();
  }

  const tools::ObsBundle bundle = tools::make_obs(opts);
  core::RunContext ctx =
      tools::make_run_context(opts, bundle, tools::load_config(opts));

  std::filesystem::create_directories(out_dir);
  write(out_dir / "config.cfg", core::serialize_config(ctx.config));
  std::printf("writing report to %s ...\n", out_dir.string().c_str());

  // Fig. 5.
  const obs::ScopedRegistry ambient(bundle.registry.get());
  const auto fig5 = core::fig5_fidelity_sweep(ctx.config.convention, 0.01);
  Table fig5_table;
  fig5_table.set_header({"eta", "fidelity"});
  for (const core::FidelityPoint& p : fig5) {
    fig5_table.add_row(
        {Table::num(p.transmissivity, 2), Table::num(p.fidelity_simulated, 6)});
  }
  fig5_table.write_csv((out_dir / "fig5.csv").string());

  // Figs. 6-8 (one sweep).
  ThreadPool pool(opts.threads.value_or(0));
  ctx.pool = &pool;
  const auto sweep =
      core::space_ground_sweep(ctx, core::paper_constellation_sizes());
  Table sweep_table;
  sweep_table.set_header(
      {"satellites", "coverage_percent", "served_percent", "mean_fidelity"});
  for (const core::ArchitectureMetrics& p : sweep) {
    sweep_table.add_row({std::to_string(p.satellites),
                         Table::num(p.coverage_percent, 4),
                         Table::num(p.served_percent, 4),
                         Table::num(p.mean_fidelity, 6)});
  }
  sweep_table.write_csv((out_dir / "fig6_fig7_fig8.csv").string());

  // Table III.
  const core::ArchitectureMetrics air = core::evaluate_air_ground(ctx);
  const core::ArchitectureMetrics& space = sweep.back();

  std::ostringstream md;
  md << "# QNTN reproduction report\n\n"
     << "Configuration: `config.cfg` in this directory.\n\n"
     << "| metric | paper | measured |\n|---|---|---|\n"
     << "| Fig. 5: F at eta = 0.7 | > 0.90 | "
     << Table::num(fig5[70].fidelity_simulated, 4) << " |\n"
     << "| Fig. 6: coverage @108 | 55.17 % | "
     << Table::num(space.coverage_percent, 2) << " % |\n"
     << "| Fig. 7: served @108 | 57.75 % | "
     << Table::num(space.served_percent, 2) << " % |\n"
     << "| Fig. 8: fidelity @108 | 0.96 | "
     << Table::num(space.mean_fidelity, 4) << " |\n"
     << "| Table III: air-ground coverage | 100 % | "
     << Table::num(air.coverage_percent, 2) << " % |\n"
     << "| Table III: air-ground served | 100 % | "
     << Table::num(air.served_percent, 2) << " % |\n"
     << "| Table III: air-ground fidelity | 0.98 | "
     << Table::num(air.mean_fidelity, 4) << " |\n\n"
     << "Series: `fig5.csv`, `fig6_fig7_fig8.csv`.\n";
  write(out_dir / "REPORT.md", md.str());

  tools::write_metrics(opts, bundle);
  tools::write_profile(opts, bundle);
  std::printf("done: %s/REPORT.md\n", out_dir.string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // bench-compare owns its argv tail (its flags are not the common set).
    if (argc >= 2 && std::string(argv[1]) == "bench-compare") {
      return cmd_bench_compare(std::vector<std::string>(argv + 2, argv + argc));
    }
    tools::CommonOptions opts = tools::parse_common_flags(argc, argv);
    // Legacy spelling: `qntn_report out-dir config-file`.
    if (!opts.config_path.has_value() && opts.positional.size() >= 2 &&
        opts.positional.front() != "metrics") {
      opts.config_path = opts.positional[1];
    }
    if (!opts.positional.empty() && opts.positional.front() == "metrics") {
      return cmd_metrics(opts);
    }
    return cmd_report(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
