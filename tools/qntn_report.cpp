// qntn_report — one-shot reproduction report. Runs every paper experiment
// with the given (or default) configuration and writes a self-contained
// report directory: CSV series per figure plus a REPORT.md summary with
// paper-vs-measured numbers.
//
//   qntn_report [out-dir]        full report (legacy: out-dir config-file)
//   qntn_report metrics [N]      run space-ground at N satellites (default
//                                54) and print the collected counters/stats
//
// Common flags (tools/cli_common.hpp): --config FILE, --out PATH,
// --threads N, --seed N, --metrics-out FILE, --trace-out FILE,
// --trace-level off|snapshots|requests.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cli_common.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace {

using namespace qntn;

void write(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw qntn::Error("cannot write " + path.string());
  out << content;
}

/// `qntn_report metrics [N]`: one instrumented space-ground run, counters
/// and timer/stat distributions printed as tables (and written as JSON when
/// --metrics-out asks for it).
int cmd_metrics(const tools::CommonOptions& opts) {
  const std::size_t n = opts.positional.size() >= 2
                            ? static_cast<std::size_t>(tools::parse_u64(
                                  "count", opts.positional[1]))
                            : 54;
  obs::Registry registry;
  std::unique_ptr<obs::TraceSink> trace;
  if (opts.trace_out.has_value()) {
    trace = std::make_unique<obs::TraceSink>(*opts.trace_out, opts.trace_level);
  }
  core::RunContext ctx;
  ctx.config = tools::load_config(opts);
  ctx.registry = &registry;
  ctx.trace = trace.get();
  ctx.seed = opts.seed;

  const core::ArchitectureMetrics m = core::evaluate_space_ground(ctx, n);
  std::printf("space-ground @%zu satellites: served %.2f %%, fidelity %.4f\n\n",
              n, m.served_percent, m.mean_fidelity);

  const obs::MetricsSnapshot snapshot = registry.snapshot();
  Table counters("counters");
  counters.set_header({"name", "value"});
  for (const auto& [name, value] : snapshot.counters) {
    counters.add_row({name, std::to_string(value)});
  }
  std::fputs(counters.to_string().c_str(), stdout);
  std::fputs("\n", stdout);

  Table stats("timers / distributions");
  stats.set_header({"name", "count", "mean", "min", "max", "stddev"});
  for (const auto& [name, running] : snapshot.stats) {
    stats.add_row({name, std::to_string(running.count()),
                   Table::num(running.mean(), 6), Table::num(running.min(), 6),
                   Table::num(running.max(), 6),
                   Table::num(running.stddev(), 6)});
  }
  std::fputs(stats.to_string().c_str(), stdout);

  if (opts.metrics_out.has_value()) {
    std::ofstream out(*opts.metrics_out);
    if (!out) throw qntn::Error("cannot write " + *opts.metrics_out);
    out << snapshot.to_json();
    std::printf("\nwrote %s\n", opts.metrics_out->c_str());
  }
  return 0;
}

int cmd_report(const tools::CommonOptions& opts) {
  std::filesystem::path out_dir = "qntn_report";
  if (opts.out.has_value()) {
    out_dir = *opts.out;
  } else if (!opts.positional.empty()) {
    out_dir = opts.positional.front();
  }

  const tools::ObsBundle bundle = tools::make_obs(opts);
  core::RunContext ctx =
      tools::make_run_context(opts, bundle, tools::load_config(opts));

  std::filesystem::create_directories(out_dir);
  write(out_dir / "config.cfg", core::serialize_config(ctx.config));
  std::printf("writing report to %s ...\n", out_dir.string().c_str());

  // Fig. 5.
  const obs::ScopedRegistry ambient(bundle.registry.get());
  const auto fig5 = core::fig5_fidelity_sweep(ctx.config.convention, 0.01);
  Table fig5_table;
  fig5_table.set_header({"eta", "fidelity"});
  for (const core::FidelityPoint& p : fig5) {
    fig5_table.add_row(
        {Table::num(p.transmissivity, 2), Table::num(p.fidelity_simulated, 6)});
  }
  fig5_table.write_csv((out_dir / "fig5.csv").string());

  // Figs. 6-8 (one sweep).
  ThreadPool pool(opts.threads.value_or(0));
  ctx.pool = &pool;
  const auto sweep =
      core::space_ground_sweep(ctx, core::paper_constellation_sizes());
  Table sweep_table;
  sweep_table.set_header(
      {"satellites", "coverage_percent", "served_percent", "mean_fidelity"});
  for (const core::ArchitectureMetrics& p : sweep) {
    sweep_table.add_row({std::to_string(p.satellites),
                         Table::num(p.coverage_percent, 4),
                         Table::num(p.served_percent, 4),
                         Table::num(p.mean_fidelity, 6)});
  }
  sweep_table.write_csv((out_dir / "fig6_fig7_fig8.csv").string());

  // Table III.
  const core::ArchitectureMetrics air = core::evaluate_air_ground(ctx);
  const core::ArchitectureMetrics& space = sweep.back();

  std::ostringstream md;
  md << "# QNTN reproduction report\n\n"
     << "Configuration: `config.cfg` in this directory.\n\n"
     << "| metric | paper | measured |\n|---|---|---|\n"
     << "| Fig. 5: F at eta = 0.7 | > 0.90 | "
     << Table::num(fig5[70].fidelity_simulated, 4) << " |\n"
     << "| Fig. 6: coverage @108 | 55.17 % | "
     << Table::num(space.coverage_percent, 2) << " % |\n"
     << "| Fig. 7: served @108 | 57.75 % | "
     << Table::num(space.served_percent, 2) << " % |\n"
     << "| Fig. 8: fidelity @108 | 0.96 | "
     << Table::num(space.mean_fidelity, 4) << " |\n"
     << "| Table III: air-ground coverage | 100 % | "
     << Table::num(air.coverage_percent, 2) << " % |\n"
     << "| Table III: air-ground served | 100 % | "
     << Table::num(air.served_percent, 2) << " % |\n"
     << "| Table III: air-ground fidelity | 0.98 | "
     << Table::num(air.mean_fidelity, 4) << " |\n\n"
     << "Series: `fig5.csv`, `fig6_fig7_fig8.csv`.\n";
  write(out_dir / "REPORT.md", md.str());

  tools::write_metrics(opts, bundle);
  std::printf("done: %s/REPORT.md\n", out_dir.string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    tools::CommonOptions opts = tools::parse_common_flags(argc, argv);
    // Legacy spelling: `qntn_report out-dir config-file`.
    if (!opts.config_path.has_value() && opts.positional.size() >= 2 &&
        opts.positional.front() != "metrics") {
      opts.config_path = opts.positional[1];
    }
    if (!opts.positional.empty() && opts.positional.front() == "metrics") {
      return cmd_metrics(opts);
    }
    return cmd_report(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
