// qntn_report — one-shot reproduction report. Runs every paper experiment
// with the given (or default) configuration and writes a self-contained
// report directory: CSV series per figure plus a REPORT.md summary with
// paper-vs-measured numbers.
//
// usage: qntn_report [output-dir] [config-file]

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/config_io.hpp"
#include "core/experiments.hpp"

namespace {

using namespace qntn;

void write(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw qntn::Error("cannot write " + path.string());
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "qntn_report";
  core::QntnConfig config;
  if (argc > 2) config = core::load_config(argv[2]);

  std::filesystem::create_directories(out_dir);
  write(out_dir / "config.cfg", core::serialize_config(config));
  std::printf("writing report to %s ...\n", out_dir.string().c_str());

  // Fig. 5.
  const auto fig5 =
      core::fig5_fidelity_sweep(config.convention, 0.01);
  Table fig5_table;
  fig5_table.set_header({"eta", "fidelity"});
  for (const core::FidelityPoint& p : fig5) {
    fig5_table.add_row(
        {Table::num(p.transmissivity, 2), Table::num(p.fidelity_simulated, 6)});
  }
  fig5_table.write_csv((out_dir / "fig5.csv").string());

  // Figs. 6-8 (one sweep).
  ThreadPool pool;
  const auto sweep =
      core::space_ground_sweep(config, core::paper_constellation_sizes(), pool);
  Table sweep_table;
  sweep_table.set_header(
      {"satellites", "coverage_percent", "served_percent", "mean_fidelity"});
  for (const core::SweepPoint& p : sweep) {
    sweep_table.add_row({std::to_string(p.satellites),
                         Table::num(p.coverage_percent, 4),
                         Table::num(p.served_percent, 4),
                         Table::num(p.mean_fidelity, 6)});
  }
  sweep_table.write_csv((out_dir / "fig6_fig7_fig8.csv").string());

  // Table III.
  const core::AirGroundResult air = core::evaluate_air_ground(config);
  const core::SweepPoint& space = sweep.back();

  std::ostringstream md;
  md << "# QNTN reproduction report\n\n"
     << "Configuration: `config.cfg` in this directory.\n\n"
     << "| metric | paper | measured |\n|---|---|---|\n"
     << "| Fig. 5: F at eta = 0.7 | > 0.90 | "
     << Table::num(fig5[70].fidelity_simulated, 4) << " |\n"
     << "| Fig. 6: coverage @108 | 55.17 % | "
     << Table::num(space.coverage_percent, 2) << " % |\n"
     << "| Fig. 7: served @108 | 57.75 % | "
     << Table::num(space.served_percent, 2) << " % |\n"
     << "| Fig. 8: fidelity @108 | 0.96 | "
     << Table::num(space.mean_fidelity, 4) << " |\n"
     << "| Table III: air-ground coverage | 100 % | "
     << Table::num(air.coverage_percent, 2) << " % |\n"
     << "| Table III: air-ground served | 100 % | "
     << Table::num(air.served_percent, 2) << " % |\n"
     << "| Table III: air-ground fidelity | 0.98 | "
     << Table::num(air.mean_fidelity, 4) << " |\n\n"
     << "Series: `fig5.csv`, `fig6_fig7_fig8.csv`.\n";
  write(out_dir / "REPORT.md", md.str());

  std::printf("done: %s/REPORT.md\n", out_dir.string().c_str());
  return 0;
}
