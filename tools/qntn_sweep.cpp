// Quick scenario driver: runs the space-ground sweep (optionally a subset of
// sizes) and the air-ground scenario, printing the Fig. 6/7/8 and Table III
// quantities. Used during calibration; the bench/ binaries are the official
// reproduction harnesses.
//
// Usage: qntn_sweep [n_sats ...]   (default: 36 72 108)
// Common flags (tools/cli_common.hpp): --config FILE, --out PATH (CSV),
// --threads N, --seed N, --metrics-out FILE, --trace-out FILE,
// --trace-level off|snapshots|requests, --profile-out FILE.

#include <cstdio>
#include <vector>

#include "cli_common.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace qntn;
  try {
    const tools::CommonOptions opts = tools::parse_common_flags(argc, argv);

    std::vector<std::size_t> sizes;
    for (const std::string& arg : opts.positional) {
      sizes.push_back(static_cast<std::size_t>(tools::parse_u64("size", arg)));
    }
    if (sizes.empty()) sizes = {36, 72, 108};

    const tools::ObsBundle bundle = tools::make_obs(opts);
    core::RunContext ctx =
        tools::make_run_context(opts, bundle, tools::load_config(opts));
    ThreadPool pool(opts.threads.value_or(0));
    ctx.pool = &pool;

    const auto sweep = core::space_ground_sweep(ctx, sizes);
    const core::ArchitectureMetrics air = core::evaluate_air_ground(ctx);

    Table table;
    table.set_header({"sats", "cover%", "served%", "fidelity", "eta", "hops"});
    std::printf("%-6s %-10s %-10s %-10s %-10s %-6s\n", "sats", "cover%",
                "served%", "fidelity", "eta", "hops");
    const auto print_row = [&](const std::string& label,
                               const core::ArchitectureMetrics& p) {
      std::printf("%-6s %-10.2f %-10.2f %-10.4f %-10.4f %-6.2f\n",
                  label.c_str(), p.coverage_percent, p.served_percent,
                  p.mean_fidelity, p.mean_transmissivity, p.mean_hops);
      table.add_row({label, Table::num(p.coverage_percent, 2),
                     Table::num(p.served_percent, 2),
                     Table::num(p.mean_fidelity, 4),
                     Table::num(p.mean_transmissivity, 4),
                     Table::num(p.mean_hops, 2)});
    };
    for (const core::ArchitectureMetrics& p : sweep) {
      print_row(std::to_string(p.satellites), p);
    }
    print_row("HAP", air);

    if (opts.out.has_value()) table.write_csv(*opts.out);
    tools::write_metrics(opts, bundle);
    tools::write_profile(opts, bundle);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
