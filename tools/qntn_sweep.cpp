// Quick scenario driver: runs the space-ground sweep (optionally a subset of
// sizes) and the air-ground scenario, printing the Fig. 6/7/8 and Table III
// quantities. Used during calibration; the bench/ binaries are the official
// reproduction harnesses.
//
// Usage: qntn_sweep [n_sats ...]   (default: 36 72 108)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/experiments.hpp"

int main(int argc, char** argv) {
  using namespace qntn;
  core::QntnConfig config;

  std::vector<std::size_t> sizes;
  for (int i = 1; i < argc; ++i) {
    sizes.push_back(static_cast<std::size_t>(std::atoi(argv[i])));
  }
  if (sizes.empty()) sizes = {36, 72, 108};

  ThreadPool pool;
  const auto sweep = core::space_ground_sweep(config, sizes, pool);
  std::printf("%-6s %-10s %-10s %-10s %-10s %-6s\n", "sats", "cover%",
              "served%", "fidelity", "eta", "hops");
  for (const core::SweepPoint& p : sweep) {
    std::printf("%-6zu %-10.2f %-10.2f %-10.4f %-10.4f %-6.2f\n", p.satellites,
                p.coverage_percent, p.served_percent, p.mean_fidelity,
                p.mean_transmissivity, p.mean_hops);
  }

  const core::AirGroundResult air = core::evaluate_air_ground(config);
  std::printf("%-6s %-10.2f %-10.2f %-10.4f %-10.4f %-6.2f\n", "HAP",
              air.coverage_percent, air.served_percent, air.mean_fidelity,
              air.mean_transmissivity, air.mean_hops);
  return 0;
}
