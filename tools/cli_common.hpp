#pragma once

// Shared command-line surface for the qntn_* tools. Every binary accepts
//
//   --config FILE        key = value configuration (see `qntn_cli config`)
//   --out PATH           primary output file/directory (tool-specific)
//   --threads N          worker threads for parallel sweeps (0 = hardware)
//   --seed N             override the request seed
//   --metrics-out FILE   write the run's counters/stats as JSON
//   --trace-out FILE     write the per-snapshot JSONL trace
//   --trace-level L      off | snapshots | requests (default: requests)
//   --profile-out FILE   write a Chrome trace-event span profile
//                        (load in chrome://tracing or ui.perfetto.dev)
//
// Flags may be spelled `--key value` or `--key=value`; anything that does
// not start with `--` stays positional. Unknown flags throw.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "core/config_io.hpp"
#include "core/experiments.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace qntn::tools {

struct CommonOptions {
  std::optional<std::string> config_path;
  std::optional<std::string> out;
  std::optional<std::string> metrics_out;
  std::optional<std::string> trace_out;
  std::optional<std::string> profile_out;
  obs::TraceLevel trace_level = obs::TraceLevel::Requests;
  std::optional<std::size_t> threads;
  std::optional<std::uint64_t> seed;
  /// Non-flag arguments in their original order (command names, counts).
  std::vector<std::string> positional;
};

inline std::uint64_t parse_u64(std::string_view flag, const std::string& text) {
  try {
    std::size_t consumed = 0;
    const std::uint64_t value = std::stoull(text, &consumed);
    QNTN_REQUIRE(consumed == text.size(), "trailing characters");
    return value;
  } catch (const std::exception&) {
    throw qntn::Error("invalid value for " + std::string(flag) + ": " + text);
  }
}

/// Parse argv[1..) into flags + positionals. Unknown `--` flags throw.
inline CommonOptions parse_common_flags(int argc, char** argv) {
  CommonOptions opts;
  std::vector<std::string> arguments(argv + 1, argv + argc);
  for (std::size_t i = 0; i < arguments.size(); ++i) {
    std::string arg = arguments[i];
    if (arg.rfind("--", 0) != 0) {
      opts.positional.push_back(std::move(arg));
      continue;
    }
    std::string value;
    bool have_value = false;
    if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.resize(eq);
      have_value = true;
    }
    const auto take_value = [&]() -> const std::string& {
      if (!have_value) {
        QNTN_REQUIRE(i + 1 < arguments.size(), "missing value for " + arg);
        value = arguments[++i];
      }
      return value;
    };
    if (arg == "--config") {
      opts.config_path = take_value();
    } else if (arg == "--out") {
      opts.out = take_value();
    } else if (arg == "--metrics-out") {
      opts.metrics_out = take_value();
    } else if (arg == "--trace-out") {
      opts.trace_out = take_value();
    } else if (arg == "--profile-out") {
      opts.profile_out = take_value();
    } else if (arg == "--trace-level") {
      opts.trace_level = obs::trace_level_from(take_value());
    } else if (arg == "--threads") {
      opts.threads = static_cast<std::size_t>(parse_u64(arg, take_value()));
    } else if (arg == "--seed") {
      opts.seed = parse_u64(arg, take_value());
    } else {
      throw qntn::Error("unknown flag: " + arg);
    }
  }
  return opts;
}

/// The configuration selected by --config (calibrated defaults otherwise).
inline core::QntnConfig load_config(const CommonOptions& opts) {
  if (opts.config_path.has_value()) return core::load_config(*opts.config_path);
  return core::QntnConfig{};
}

/// Owning bundle behind a RunContext's observability pointers. Created
/// whenever --metrics-out / --trace-out / --profile-out ask for output (a
/// registry is also created for a trace-only run: traces and counters come
/// from one run).
struct ObsBundle {
  std::unique_ptr<obs::Registry> registry;
  std::unique_ptr<obs::TraceSink> trace;
  std::unique_ptr<obs::Profiler> profiler;
};

inline ObsBundle make_obs(const CommonOptions& opts) {
  ObsBundle bundle;
  if (opts.metrics_out.has_value() || opts.trace_out.has_value()) {
    bundle.registry = std::make_unique<obs::Registry>();
  }
  if (opts.trace_out.has_value()) {
    bundle.trace =
        std::make_unique<obs::TraceSink>(*opts.trace_out, opts.trace_level);
  }
  if (opts.profile_out.has_value()) {
    bundle.profiler = std::make_unique<obs::Profiler>();
  }
  return bundle;
}

/// RunContext for this invocation: config file (or defaults), obs hooks,
/// seed override. The pool is left to the caller (tools that sweep create
/// one sized by --threads).
inline core::RunContext make_run_context(const CommonOptions& opts,
                                         const ObsBundle& bundle,
                                         core::QntnConfig config) {
  core::RunContext ctx;
  ctx.config = std::move(config);
  ctx.registry = bundle.registry.get();
  ctx.trace = bundle.trace.get();
  ctx.profiler = bundle.profiler.get();
  ctx.seed = opts.seed;
  return ctx;
}

/// Write the registry snapshot to --metrics-out, if both were requested.
inline void write_metrics(const CommonOptions& opts, const ObsBundle& bundle) {
  if (!opts.metrics_out.has_value() || bundle.registry == nullptr) return;
  std::ofstream out(*opts.metrics_out);
  if (!out) throw qntn::Error("cannot write " + *opts.metrics_out);
  out << bundle.registry->snapshot().to_json();
}

/// Write the collected span profile to --profile-out, if requested.
inline void write_profile(const CommonOptions& opts, const ObsBundle& bundle) {
  if (!opts.profile_out.has_value() || bundle.profiler == nullptr) return;
  bundle.profiler->write_chrome_trace(*opts.profile_out);
}

}  // namespace qntn::tools
