// Calibration tool for the FSO channel parameters (DESIGN.md §4).
//
// Prints the elevation dependence of the symmetric link transmissivity for
// the three link classes of the QNTN study (ground-satellite at 500 km,
// ground-HAP at 30 km, inter-satellite), with the per-component budget, so
// the defaults in core/qntn_config.hpp can be chosen to place the paper's
// 0.7 threshold crossing where the coverage curve requires it.

#include <cmath>
#include <cstdio>

#include "channel/fso.hpp"
#include "cli_common.hpp"
#include "common/constants.hpp"
#include "common/units.hpp"
#include "core/ground_networks.hpp"
#include "core/qntn_config.hpp"
#include "geo/frames.hpp"

namespace {

using namespace qntn;

/// Slant range to a target at altitude h seen at elevation el.
double slant_range(double altitude, double elevation) {
  const double re = kEarthRadius;
  const double s = re * std::sin(elevation);
  return -s + std::sqrt(s * s + altitude * altitude + 2.0 * re * altitude);
}

void print_budget_row(double el_deg, double range, const channel::FsoBudget& b,
                      double symmetric) {
  std::printf(
      "  el=%5.1f deg  L=%8.1f km  diff=%.4f turb=%.4f atm=%.4f eff=%.4f"
      "  -> dir=%.4f sym=%.4f  (w0=%.3f m, w_lt=%.3f m, r0_eff=%.3f m)\n",
      el_deg, m_to_km(range), b.eta_diffraction, b.eta_turbulence,
      b.eta_atmosphere, b.eta_efficiency, b.total, symmetric, b.beam_waist,
      b.spot_longterm, b.fried_r0);
}

}  // namespace

int main(int argc, char** argv) {
  // Common flag surface; --config selects the parameter set to calibrate
  // against, --out redirects the report. --threads/--seed are accepted for
  // uniformity and unused (the tool is single-threaded and deterministic).
  tools::CommonOptions opts;
  try {
    opts = tools::parse_common_flags(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (opts.out.has_value() &&
      std::freopen(opts.out->c_str(), "w", stdout) == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", opts.out->c_str());
    return 1;
  }
  const core::QntnConfig config = tools::load_config(opts);
  const sim::LinkPolicy policy = config.link_policy();

  std::printf("QNTN FSO calibration (threshold %.2f, mask %.1f deg)\n\n",
              config.transmissivity_threshold, rad_to_deg(config.elevation_mask));

  std::printf("[ground <-> satellite], altitude %.0f km\n",
              m_to_km(config.satellite_altitude));
  const channel::FsoLinkEvaluator gs(policy.fso, config.ground_terminal(),
                                     config.satellite_terminal(), 0.0,
                                     config.satellite_altitude);
  double crossing = -1.0;
  for (double el = 20.0; el <= 90.0; el += 5.0) {
    const double elevation = deg_to_rad(el);
    const double range = slant_range(config.satellite_altitude, elevation);
    const channel::FsoBudget b = gs.evaluate(range, elevation);
    const double sym = gs.symmetric(range, elevation);
    print_budget_row(el, range, b, sym);
    if (crossing < 0.0 && sym >= config.transmissivity_threshold) crossing = el;
  }
  std::printf("  -> threshold crossing near %.1f deg elevation\n\n", crossing);

  std::printf("[ground <-> HAP], altitude %.0f km at the paper's position\n",
              m_to_km(config.hap_position.altitude));
  const channel::FsoLinkEvaluator gh(policy.fso, config.ground_terminal(),
                                     config.hap_terminal(), 0.0,
                                     config.hap_position.altitude);
  for (const core::LanDefinition& lan : core::qntn_lans()) {
    const geo::Geodetic& site = lan.nodes.front();
    const Vec3 hap_ecef = geo::geodetic_to_ecef(config.hap_position);
    const geo::AzElRange look = geo::look_angles(site, hap_ecef);
    const channel::FsoBudget b = gh.evaluate(look.range, look.elevation);
    const double sym = gh.symmetric(look.range, look.elevation);
    std::printf("  %-5s", lan.name.c_str());
    print_budget_row(rad_to_deg(look.elevation), look.range, b, sym);
  }

  std::printf("\n[satellite <-> satellite] (vacuum)\n");
  const channel::FsoLinkEvaluator ss(policy.fso, config.satellite_terminal(),
                                     config.satellite_terminal(),
                                     config.satellite_altitude,
                                     config.satellite_altitude);
  for (double km : {500.0, 1000.0, 2000.0, 3000.0, 5000.0, 6871.0}) {
    const double range = km_to_m(km);
    const channel::FsoBudget b = ss.evaluate(range, kPi / 2.0);
    print_budget_row(90.0, range, b, ss.symmetric(range, kPi / 2.0));
  }

  std::printf("\n[fidelity mapping] F_uhlmann(eta) = (1+sqrt(eta))/2\n");
  for (double eta : {0.7, 0.75, 0.8, 0.85, 0.9, 0.95}) {
    std::printf("  eta=%.2f  1 hop F=%.4f   2 hops (eta^2=%.3f) F=%.4f\n", eta,
                (1.0 + std::sqrt(eta)) / 2.0, eta * eta,
                (1.0 + eta) / 2.0);
  }
  return 0;
}
